(* Proven-in-use verdict reports.

   A verdict is a snapshot of everything the assessor can claim from the
   evidence ingested so far: operating demands and failures (per plant
   and pooled), posterior PFD bounds, the aggregate Wald boundary state,
   profile drift, and the bookkeeping an auditor needs (how many lines
   were consumed, skipped, damaged). Constructing a verdict reads the
   assessor's counters and derives everything else, so it never perturbs
   the assessor — interim verdicts in windowed mode are free.

   Rendering is deliberately timestamp-free: the JSON form contains no
   wall-clock or rate data (those live in the Obs.Metrics snapshot), so
   the final verdict for a given event multiset is byte-identical
   however the stream was windowed. *)

type overall = Accepted | Rejected | Insufficient

type plant = {
  plant : int;
  demands : int;
  failures : int;
  posterior : Assessor.posterior;
  wald : Assessor.wald;
}

type t = {
  config : Assessor.config;
  meta : Assessor.run_meta;
  events : Assessor.event_counts;
  plants : plant list;
  fleet : Assessor.fleet_counts;
  fleet_posterior : Assessor.posterior;
  fleet_wald : Assessor.wald;
  runner : Assessor.runner_counts;
  sprt : Assessor.sprt_counts;
  drift : Drift.result option;
  overall : overall;
  reconciled : bool;
}

let judge ~fleet_wald ~fleet_posterior ~(drift : Drift.result option)
    ~(config : Assessor.config) ~demands =
  let drift_alarm = match drift with Some d -> d.Drift.alarm | None -> false in
  if demands = 0 then Insufficient
  else if drift_alarm then Rejected
  else
    match fleet_wald.Assessor.w_decision with
    | Schema.Reject -> Rejected
    | Schema.Accept
      when fleet_posterior.Assessor.confidence_in_bound >= config.confidence
      ->
        Accepted
    | Schema.Accept | Schema.Undecided -> Insufficient

let of_assessor a =
  let config = Assessor.config a in
  let fleet = Assessor.fleet_counts a in
  let plants =
    List.map
      (fun (c : Assessor.plant_counts) ->
        {
          plant = c.Assessor.plant;
          demands = c.Assessor.demands;
          failures = c.Assessor.failures;
          posterior =
            Assessor.posterior_of_counts config ~demands:c.Assessor.demands
              ~failures:c.Assessor.failures;
          wald =
            Assessor.wald_of_counts config ~demands:c.Assessor.demands
              ~failures:c.Assessor.failures;
        })
      (Assessor.plant_counts a)
  in
  let fleet_posterior =
    Assessor.posterior_of_counts config ~demands:fleet.Assessor.f_demands
      ~failures:fleet.Assessor.f_failures
  in
  let fleet_wald =
    Assessor.wald_of_counts config ~demands:fleet.Assessor.f_demands
      ~failures:fleet.Assessor.f_failures
  in
  let drift = Assessor.drift a in
  (match drift with
  | Some d when d.Drift.alarm -> Assessor.record_drift_alarm ()
  | _ -> ());
  let reconciled =
    (* The fleet.observe summary events agree with the plant events they
       bracket: plant count and pooled failures match what the simulator
       declared. Vacuously true without summary events. *)
    fleet.Assessor.f_observes = 0
    || fleet.Assessor.f_declared_plants = fleet.Assessor.f_plants
       && fleet.Assessor.f_declared_failures = fleet.Assessor.f_failures
  in
  {
    config;
    meta = Assessor.run_meta a;
    events = Assessor.event_counts a;
    plants;
    fleet;
    fleet_posterior;
    fleet_wald;
    runner = Assessor.runner_counts a;
    sprt = Assessor.sprt_counts a;
    drift;
    overall =
      judge ~fleet_wald ~fleet_posterior ~drift ~config
        ~demands:fleet.Assessor.f_demands;
    reconciled;
  }

let overall_string = function
  | Accepted -> "accepted"
  | Rejected -> "rejected"
  | Insufficient -> "insufficient-evidence"

let decision_string = function
  | Schema.Accept -> "accept"
  | Schema.Reject -> "reject"
  | Schema.Undecided -> "undecided"

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)
(* ------------------------------------------------------------------ *)

let json_posterior (p : Assessor.posterior) =
  Obs.Json.Obj
    [
      ("mean", Obs.Json.Float p.Assessor.post_mean);
      ("lo", Obs.Json.Float p.Assessor.post_lo);
      ("hi", Obs.Json.Float p.Assessor.post_hi);
      ("confidence_in_bound", Obs.Json.Float p.Assessor.confidence_in_bound);
    ]

let json_wald (w : Assessor.wald) =
  Obs.Json.Obj
    [
      ("decision", Obs.Json.String (decision_string w.Assessor.w_decision));
      ("log_lr", Obs.Json.Float w.Assessor.w_log_lr);
      ("log_a", Obs.Json.Float w.Assessor.w_log_a);
      ("log_b", Obs.Json.Float w.Assessor.w_log_b);
    ]

let json_opt_int = function
  | Some i -> Obs.Json.Int i
  | None -> Obs.Json.Null

let to_json v =
  let config = v.config in
  let plant p =
    Obs.Json.Obj
      [
        ("plant", Obs.Json.Int p.plant);
        ("demands", Obs.Json.Int p.demands);
        ("failures", Obs.Json.Int p.failures);
        ("posterior", json_posterior p.posterior);
        ("wald", json_wald p.wald);
      ]
  in
  let drift =
    match v.drift with
    | None -> Obs.Json.Null
    | Some d ->
        Obs.Json.Obj
          [
            ("total", Obs.Json.Int d.Drift.total);
            ("chi_square", Obs.Json.Float d.Drift.chi_square);
            ("dof", Obs.Json.Int d.Drift.dof);
            ("p_value", Obs.Json.Float d.Drift.p_value);
            ("kl_divergence", Obs.Json.Float d.Drift.kl_divergence);
            ("impossible", Obs.Json.Int d.Drift.impossible);
            ("alarm", Obs.Json.Bool d.Drift.alarm);
          ]
  in
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "divrel-evidence/1");
      ("verdict", Obs.Json.String (overall_string v.overall));
      ( "config",
        Obs.Json.Obj
          [
            ("theta0", Obs.Json.Float config.Assessor.theta0);
            ("theta1", Obs.Json.Float config.Assessor.theta1);
            ("alpha", Obs.Json.Float config.Assessor.alpha);
            ("beta", Obs.Json.Float config.Assessor.beta);
            ("prior_a", Obs.Json.Float config.Assessor.prior_a);
            ("prior_b", Obs.Json.Float config.Assessor.prior_b);
            ("bound", Obs.Json.Float config.Assessor.bound);
            ("confidence", Obs.Json.Float config.Assessor.confidence);
            ("drift_alpha", Obs.Json.Float config.Assessor.drift_alpha);
            ( "declared_profile_size",
              match config.Assessor.expected_profile with
              | Some p -> Obs.Json.Int (Array.length p)
              | None -> Obs.Json.Null );
          ] )
      ;
      ( "run",
        Obs.Json.Obj
          [
            ("starts", Obs.Json.Int v.meta.Assessor.starts);
            ("ends", Obs.Json.Int v.meta.Assessor.ends);
            ("seed", json_opt_int v.meta.Assessor.seed);
            ("shards", json_opt_int v.meta.Assessor.shards);
            ( "target",
              match v.meta.Assessor.target with
              | Some s -> Obs.Json.String s
              | None -> Obs.Json.Null );
          ] );
      ( "events",
        Obs.Json.Obj
          [
            ("accepted", Obs.Json.Int v.events.Assessor.e_accepted);
            ("skipped", Obs.Json.Int v.events.Assessor.e_skipped_total);
            ("malformed", Obs.Json.Int v.events.Assessor.e_malformed);
            ( "skipped_kinds",
              Obs.Json.Obj
                (List.map
                   (fun (kind, n) -> (kind, Obs.Json.Int n))
                   v.events.Assessor.e_skipped) );
          ] );
      ( "fleet",
        Obs.Json.Obj
          [
            ("plants", Obs.Json.Int v.fleet.Assessor.f_plants);
            ("demands", Obs.Json.Int v.fleet.Assessor.f_demands);
            ("failures", Obs.Json.Int v.fleet.Assessor.f_failures);
            ("reconciled", Obs.Json.Bool v.reconciled);
            ("posterior", json_posterior v.fleet_posterior);
            ("wald", json_wald v.fleet_wald);
          ] );
      ("plants", Obs.Json.List (List.map plant v.plants));
      ( "runner",
        Obs.Json.Obj
          [
            ("runs", Obs.Json.Int v.runner.Assessor.r_runs);
            ("demands", Obs.Json.Int v.runner.Assessor.r_demands);
            ("failures", Obs.Json.Int v.runner.Assessor.r_failures);
            ("coincident", Obs.Json.Int v.runner.Assessor.r_coincident);
            ("rng_draws", Obs.Json.Int v.runner.Assessor.r_rng_draws);
          ] );
      ( "sprt",
        Obs.Json.Obj
          [
            ("accepts", Obs.Json.Int v.sprt.Assessor.s_accepts);
            ("rejects", Obs.Json.Int v.sprt.Assessor.s_rejects);
            ("undecided", Obs.Json.Int v.sprt.Assessor.s_undecided);
            ("demands", Obs.Json.Int v.sprt.Assessor.s_demands);
            ("failures", Obs.Json.Int v.sprt.Assessor.s_failures);
          ] );
      ("drift", drift);
    ]

let render_json v = Obs.Json.render (to_json v)

(* ------------------------------------------------------------------ *)
(* Text                                                               *)
(* ------------------------------------------------------------------ *)

let render_text ?(plant_limit = 16) v =
  let b = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let config = v.config in
  pf "proven-in-use verdict: %s\n" (overall_string v.overall);
  pf "  hypotheses: accept PFD <= %g, reject PFD >= %g (alpha=%g, beta=%g)\n"
    config.Assessor.theta0 config.Assessor.theta1 config.Assessor.alpha
    config.Assessor.beta;
  pf "  prior Beta(%g, %g); reporting %g%% posterior interval, bound %g\n"
    config.Assessor.prior_a config.Assessor.prior_b
    (100.0 *. config.Assessor.confidence)
    config.Assessor.bound;
  (match v.meta.Assessor.seed with
  | Some seed ->
      pf "  source run: target=%s seed=%d shards=%s (%d start / %d end)\n"
        (Option.value ~default:"?" v.meta.Assessor.target)
        seed
        (match v.meta.Assessor.shards with
        | Some s -> string_of_int s
        | None -> "?")
        v.meta.Assessor.starts v.meta.Assessor.ends
  | None -> ());
  pf "  events: %d consumed, %d skipped, %d malformed\n"
    v.events.Assessor.e_accepted v.events.Assessor.e_skipped_total
    v.events.Assessor.e_malformed;
  List.iter
    (fun (kind, n) -> pf "    skipped kind %-20s %d\n" kind n)
    v.events.Assessor.e_skipped;
  pf "  fleet: %d plants, %d demands, %d failures%s\n"
    v.fleet.Assessor.f_plants v.fleet.Assessor.f_demands
    v.fleet.Assessor.f_failures
    (if v.reconciled then "" else "  [NOT RECONCILED with fleet.observe]");
  pf "    posterior PFD: mean %.3g, %g%% interval [%.3g, %.3g], P(<=%g) = %.4f\n"
    v.fleet_posterior.Assessor.post_mean
    (100.0 *. config.Assessor.confidence)
    v.fleet_posterior.Assessor.post_lo v.fleet_posterior.Assessor.post_hi
    config.Assessor.bound
    v.fleet_posterior.Assessor.confidence_in_bound;
  pf "    wald boundary: %s (log LR %.3f; accept <= %.3f, reject >= %.3f)\n"
    (decision_string v.fleet_wald.Assessor.w_decision)
    v.fleet_wald.Assessor.w_log_lr v.fleet_wald.Assessor.w_log_b
    v.fleet_wald.Assessor.w_log_a;
  (match v.drift with
  | None -> pf "  drift: no declared profile (detection disabled)\n"
  | Some d ->
      pf
        "  drift: %s — chi2 %.3f (dof %d, p %.3g), KL %.3g, %d impossible \
         demand(s) over %d demands\n"
        (if d.Drift.alarm then "ALARM" else "stable")
        d.Drift.chi_square d.Drift.dof d.Drift.p_value d.Drift.kl_divergence
        d.Drift.impossible d.Drift.total);
  if v.runner.Assessor.r_runs > 0 then
    pf "  runner: %d runs, %d demands, %d failures (%d coincident), %d draws\n"
      v.runner.Assessor.r_runs v.runner.Assessor.r_demands
      v.runner.Assessor.r_failures v.runner.Assessor.r_coincident
      v.runner.Assessor.r_rng_draws;
  if
    v.sprt.Assessor.s_accepts + v.sprt.Assessor.s_rejects
    + v.sprt.Assessor.s_undecided
    > 0
  then
    pf "  sprt decisions: %d accept, %d reject, %d undecided (%d demands)\n"
      v.sprt.Assessor.s_accepts v.sprt.Assessor.s_rejects
      v.sprt.Assessor.s_undecided v.sprt.Assessor.s_demands;
  let n_plants = List.length v.plants in
  let shown = min plant_limit n_plants in
  if n_plants > 0 then begin
    pf "  per-plant evidence (%d of %d):\n" shown n_plants;
    pf "    %6s %10s %9s %10s %22s %9s\n" "plant" "demands" "failures"
      "post.mean" "interval" "wald";
    List.iteri
      (fun i p ->
        if i < plant_limit then
          pf "    %6d %10d %9d %10.3g [%9.3g, %9.3g] %9s\n" p.plant p.demands
            p.failures p.posterior.Assessor.post_mean
            p.posterior.Assessor.post_lo p.posterior.Assessor.post_hi
            (decision_string p.wald.Assessor.w_decision))
      v.plants;
    if n_plants > plant_limit then
      pf "    ... %d more plant(s) elided (full detail in the JSON verdict)\n"
        (n_plants - plant_limit)
  end;
  Buffer.contents b
