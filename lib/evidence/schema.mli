(** Typed, consumer-side contract for the JSONL run-log event schema.

    The producer side (instrumented simulator code appending through
    {!Obs.Runlog}) is free-form; this module pins down the event kinds
    and required fields the proven-in-use assessor consumes — the schema
    documented in EXPERIMENTS.md ("Run-log event schema"). Parsing never
    raises: damaged lines become {!Malformed} and well-formed events of
    unconsumed kinds become {!Skipped}, both of which the assessor counts
    and reports rather than aborting on. *)

type sprt_outcome = Accept | Reject | Undecided

type event =
  | Run_start of { target : string; seed : int; shards : int }
  | Run_end of {
      target : string;
      seed : int;
      shards : int;
      rng_draws : int;
      duration_ns : int;
    }
  | Runner_run of {
      demands : int;
      system_failures : int;
      coincident_failures : int;
      rng_draws : int;
      demand_hist : (int * int) list;
          (** sparse empirical demand histogram: (id, count), count > 0 *)
    }
  | Fleet_plant of {
      plant : int;
      demands : int;
      failures : int;
      true_pfd : float;
    }
  | Fleet_observe of {
      plants : int;
      demands_per_plant : int;
      failures : int;
    }
  | Sprt_decision of {
      decision : sprt_outcome;
      demands : int;
      failures : int;
      log_lr : float;
    }

type parsed =
  | Event of event  (** a consumed, schema-valid event *)
  | Skipped of string
      (** a well-formed event of a kind the assessor does not consume
          (e.g. [campaign.mission], [check.oracle]); the payload is the
          kind *)
  | Malformed of string
      (** not JSON, not an object, or a consumed kind missing/ill-typing
          a required field; the payload is a diagnostic *)

val parse_json : Obs.Json.t -> parsed
(** Classify one already-parsed run-log event. *)

val parse_line : string -> parsed
(** Classify one JSONL line. Never raises. *)
