(** Resumable line cursor over a run-log file.

    Reads a JSONL run log one line at a time — never the whole file —
    and exposes the byte offset after each line so a consumer can stop,
    reopen the file later, and {!resume} where it left off. *)

type t

val open_file : string -> t
(** Opens the file in binary mode (offsets are byte-exact). Raises
    [Sys_error] if the file cannot be opened. The channel is closed by
    {!close}. *)

val of_channel : in_channel -> t
(** Wrap an existing channel. {!close} leaves the channel open: the
    caller owns it. *)

val next_line : t -> string option
(** Next line without its terminator; [None] at end of file. A growing
    file can be polled: once the writer appends more lines, [next_line]
    returns them. *)

val offset : t -> int
(** Current byte offset (the position the next {!next_line} reads
    from). Persist it to resume after reopening. *)

val resume : t -> offset:int -> unit
(** Seek to a byte offset previously returned by {!offset}. *)

val lines_read : t -> int
(** Lines handed out by this cursor since creation (not affected by
    {!resume}). *)

val fold_lines : t -> init:'a -> f:('a -> string -> 'a) -> 'a
(** Fold [f] over the remaining lines. *)

val iter_lines : t -> f:(string -> unit) -> unit

val close : t -> unit
(** Close the underlying channel if {!open_file} created it; no-op for
    {!of_channel}. *)
