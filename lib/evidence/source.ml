(* Resumable line cursor over a run-log file.

   The assessor must handle run logs far larger than memory, so the
   source hands out one line at a time from a channel and exposes the
   byte offset after each line. A consumer that stops mid-file (e.g. a
   windowed CLI run, or a monitor polling a growing log) can reopen the
   file later and [resume] from the saved offset without re-reading the
   prefix. *)

type t = {
  ic : in_channel;
  owned : bool;  (* close the channel on [close]? *)
  mutable lines : int;
}

let of_channel ic = { ic; owned = false; lines = 0 }
let open_file path = { ic = open_in_bin path; owned = true; lines = 0 }

let next_line t =
  match Obs.Runlog.input_line_opt t.ic with
  | Some line ->
      t.lines <- t.lines + 1;
      Some line
  | None -> None

let offset t = pos_in t.ic
let lines_read t = t.lines
let resume t ~offset = seek_in t.ic offset

let close t = if t.owned then close_in t.ic

let fold_lines t ~init ~f =
  let rec go acc =
    match next_line t with None -> acc | Some line -> go (f acc line)
  in
  go init

let iter_lines t ~f = fold_lines t ~init:() ~f:(fun () line -> f line)
