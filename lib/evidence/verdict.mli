(** Proven-in-use verdict reports.

    A verdict snapshots everything the assessor can claim from the
    evidence ingested so far. Construction is read-only on the assessor,
    so interim (windowed) verdicts are free, and rendering contains no
    timestamps or rates: the verdict for a given multiset of events is
    byte-identical however the stream was windowed. *)

type overall =
  | Accepted
      (** Wald boundary accepts, the posterior puts at least the
          configured confidence below the PFD bound, and no drift
          alarm. *)
  | Rejected  (** Wald boundary rejects, or the drift detector alarms. *)
  | Insufficient  (** anything else: keep collecting evidence *)

type plant = {
  plant : int;
  demands : int;
  failures : int;
  posterior : Assessor.posterior;
  wald : Assessor.wald;
}

type t = {
  config : Assessor.config;
  meta : Assessor.run_meta;
  events : Assessor.event_counts;
  plants : plant list;  (** sorted by plant id *)
  fleet : Assessor.fleet_counts;
  fleet_posterior : Assessor.posterior;
  fleet_wald : Assessor.wald;
  runner : Assessor.runner_counts;
  sprt : Assessor.sprt_counts;
  drift : Drift.result option;
  overall : overall;
  reconciled : bool;
      (** fleet.observe summaries agree with the pooled fleet.plant
          counters (vacuously true when no summary events were seen) *)
}

val of_assessor : Assessor.t -> t
(** Derive a verdict from the assessor's current counters. Bumps the
    [evidence.drift_alarms] metric when the drift detector is alarming;
    otherwise read-only. *)

val overall_string : overall -> string

val decision_string : Schema.sprt_outcome -> string

val to_json : t -> Obs.Json.t
(** Deterministic: no timestamps, rates or host data. Schema
    ["divrel-evidence/1"]. *)

val render_json : t -> string

val render_text : ?plant_limit:int -> t -> string
(** Human-readable report; at most [plant_limit] (default 16) per-plant
    rows, with the rest elided (the JSON form always carries all). *)
