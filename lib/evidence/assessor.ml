(* Streaming proven-in-use assessor.

   One pass, O(plants + demand-space) state: every ingested event updates
   counters only, and every judgement (Bayesian posterior bounds, the
   Wald accept/reject boundary, profile drift) is re-derived from those
   counters on demand. That factoring is what makes the core invariant
   hold by construction: the final verdict is a pure function of the
   multiset of ingested events, so feeding a run log in windows of any
   size — emitting interim verdicts along the way — produces the same
   final verdict, byte for byte, as one batch pass (pinned by property
   test and by the CLI identity test).

   The SPRT-style boundary differs from the online Simulator.Sprt in one
   deliberate way: Wald's sequential test stops at the first boundary
   crossing, but an offline assessor sees aggregated counts (a fleet
   plant reports one (demands, failures) pair, not a demand-by-demand
   stream), so the boundary here is re-evaluated against the aggregate
   log-likelihood ratio. Same hypotheses, same thresholds, no stopping
   rule — the verdict reflects all evidence ingested so far. *)

(* Telemetry (all no-ops until enabled; see lib/obs): ingest volume and
   outcome counters, drift alarms raised at verdict time, and an
   ingest-rate histogram (events/second per timed batch). *)
let m_events = Obs.Metrics.counter "evidence.events_ingested"
let m_skipped = Obs.Metrics.counter "evidence.events_skipped"
let m_malformed = Obs.Metrics.counter "evidence.lines_malformed"
let m_drift_alarms = Obs.Metrics.counter "evidence.drift_alarms"

let h_ingest_rate =
  (* Events per second per timed ingest batch: 1e2 .. 1e8. *)
  Obs.Metrics.histogram ~lo:1e2 ~decades:6 ~per_decade:4
    "evidence.ingest_rate"

type config = {
  theta0 : float;
  theta1 : float;
  alpha : float;
  beta : float;
  prior_a : float;
  prior_b : float;
  bound : float;
  confidence : float;
  expected_profile : float array option;
  drift_alpha : float;
}

let default_config =
  {
    theta0 = 1e-3;
    theta1 = 1e-2;
    alpha = 0.01;
    beta = 0.01;
    prior_a = 1.0;
    prior_b = 1.0;
    bound = 1e-2;
    confidence = 0.9;
    expected_profile = None;
    drift_alpha = 1e-3;
  }

let validate_config c =
  if not (0.0 < c.theta0 && c.theta0 < c.theta1 && c.theta1 < 1.0) then
    invalid_arg "Evidence.Assessor: need 0 < theta0 < theta1 < 1";
  if c.alpha <= 0.0 || c.alpha >= 1.0 || c.beta <= 0.0 || c.beta >= 1.0 then
    invalid_arg "Evidence.Assessor: error rates must lie strictly in (0, 1)";
  if c.prior_a <= 0.0 || c.prior_b <= 0.0 then
    invalid_arg "Evidence.Assessor: prior parameters must be positive";
  if c.bound <= 0.0 || c.bound >= 1.0 then
    invalid_arg "Evidence.Assessor: bound must lie strictly in (0, 1)";
  if c.confidence <= 0.0 || c.confidence >= 1.0 then
    invalid_arg "Evidence.Assessor: confidence must lie strictly in (0, 1)";
  if c.drift_alpha <= 0.0 || c.drift_alpha >= 1.0 then
    invalid_arg "Evidence.Assessor: drift_alpha must lie strictly in (0, 1)"

type plant_state = { mutable p_demands : int; mutable p_failures : int }

type t = {
  config : config;
  plants : (int, plant_state) Hashtbl.t;
  mutable runner_runs : int;
  mutable runner_demands : int;
  mutable runner_failures : int;
  mutable runner_coincident : int;
  mutable runner_rng_draws : int;
  mutable sprt_accepts : int;
  mutable sprt_rejects : int;
  mutable sprt_undecided : int;
  mutable sprt_demands : int;
  mutable sprt_failures : int;
  mutable run_starts : int;
  mutable run_ends : int;
  mutable declared_seed : int option;
  mutable declared_shards : int option;
  mutable declared_target : string option;
  mutable fleet_observes : int;
  mutable declared_plants : int;
  mutable declared_fleet_failures : int;
  (* Empirical demand histogram (by id), grown on demand. *)
  mutable demand_counts : int array;
  mutable accepted : int;
  mutable malformed : int;
  skipped : (string, int) Hashtbl.t;
  mutable skipped_total : int;
}

let create config =
  validate_config config;
  {
    config;
    plants = Hashtbl.create 64;
    runner_runs = 0;
    runner_demands = 0;
    runner_failures = 0;
    runner_coincident = 0;
    runner_rng_draws = 0;
    sprt_accepts = 0;
    sprt_rejects = 0;
    sprt_undecided = 0;
    sprt_demands = 0;
    sprt_failures = 0;
    run_starts = 0;
    run_ends = 0;
    declared_seed = None;
    declared_shards = None;
    declared_target = None;
    fleet_observes = 0;
    declared_plants = 0;
    declared_fleet_failures = 0;
    demand_counts = [||];
    accepted = 0;
    malformed = 0;
    skipped = Hashtbl.create 8;
    skipped_total = 0;
  }

let config t = t.config

(* ------------------------------------------------------------------ *)
(* Ingest                                                             *)
(* ------------------------------------------------------------------ *)

let plant_state t plant =
  match Hashtbl.find_opt t.plants plant with
  | Some s -> s
  | None ->
      let s = { p_demands = 0; p_failures = 0 } in
      Hashtbl.add t.plants plant s;
      s

let bump_demand t id count =
  let n = Array.length t.demand_counts in
  if id >= n then begin
    let grown = Array.make (max (id + 1) (max 16 (2 * n))) 0 in
    Array.blit t.demand_counts 0 grown 0 n;
    t.demand_counts <- grown
  end;
  t.demand_counts.(id) <- t.demand_counts.(id) + count

let ingest_event t (event : Schema.event) =
  t.accepted <- t.accepted + 1;
  Obs.Metrics.incr m_events;
  match event with
  | Schema.Run_start { target; seed; shards } ->
      t.run_starts <- t.run_starts + 1;
      if t.declared_seed = None then t.declared_seed <- Some seed;
      if t.declared_shards = None then t.declared_shards <- Some shards;
      if t.declared_target = None then t.declared_target <- Some target
  | Schema.Run_end { rng_draws = _; _ } -> t.run_ends <- t.run_ends + 1
  | Schema.Runner_run
      { demands; system_failures; coincident_failures; rng_draws; demand_hist }
    ->
      t.runner_runs <- t.runner_runs + 1;
      t.runner_demands <- t.runner_demands + demands;
      t.runner_failures <- t.runner_failures + system_failures;
      t.runner_coincident <- t.runner_coincident + coincident_failures;
      t.runner_rng_draws <- t.runner_rng_draws + rng_draws;
      List.iter (fun (id, count) -> bump_demand t id count) demand_hist
  | Schema.Fleet_plant { plant; demands; failures; true_pfd = _ } ->
      let s = plant_state t plant in
      s.p_demands <- s.p_demands + demands;
      s.p_failures <- s.p_failures + failures
  | Schema.Fleet_observe { plants; demands_per_plant = _; failures } ->
      t.fleet_observes <- t.fleet_observes + 1;
      t.declared_plants <- max t.declared_plants plants;
      t.declared_fleet_failures <- t.declared_fleet_failures + failures
  | Schema.Sprt_decision { decision; demands; failures; log_lr = _ } ->
      (match decision with
      | Schema.Accept -> t.sprt_accepts <- t.sprt_accepts + 1
      | Schema.Reject -> t.sprt_rejects <- t.sprt_rejects + 1
      | Schema.Undecided -> t.sprt_undecided <- t.sprt_undecided + 1);
      t.sprt_demands <- t.sprt_demands + demands;
      t.sprt_failures <- t.sprt_failures + failures

let ingest_parsed t = function
  | Schema.Event e -> ingest_event t e
  | Schema.Skipped kind ->
      t.skipped_total <- t.skipped_total + 1;
      Obs.Metrics.incr m_skipped;
      Hashtbl.replace t.skipped kind
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.skipped kind))
  | Schema.Malformed _ ->
      t.malformed <- t.malformed + 1;
      Obs.Metrics.incr m_malformed

let ingest_line t line = ingest_parsed t (Schema.parse_line line)
let ingest_json t json = ingest_parsed t (Schema.parse_json json)

let ingest_runlog t log = List.iter (ingest_json t) (Obs.Runlog.events log)

let ingest_batch t lines =
  let count = List.length lines in
  if count > 0 then begin
    let (), dur_ns = Obs.Clock.timed (fun () -> List.iter (ingest_line t) lines) in
    if Obs.Metrics.is_enabled () then begin
      let seconds = Obs.Clock.ns_to_s dur_ns in
      if seconds > 0.0 then
        Obs.Metrics.observe h_ingest_rate (float_of_int count /. seconds)
    end
  end

(* ------------------------------------------------------------------ *)
(* Derived judgements (pure functions of the counters)                 *)
(* ------------------------------------------------------------------ *)

type wald = {
  w_decision : Schema.sprt_outcome;
  w_log_lr : float;
  w_log_a : float;
  w_log_b : float;
}

let wald_of_counts config ~demands ~failures =
  let log_a = log ((1.0 -. config.beta) /. config.alpha) in
  let log_b = log (config.beta /. (1.0 -. config.alpha)) in
  let per_failure = log (config.theta1 /. config.theta0) in
  let per_success =
    Numerics.Special.log1p (-.config.theta1)
    -. Numerics.Special.log1p (-.config.theta0)
  in
  let log_lr =
    (float_of_int failures *. per_failure)
    +. (float_of_int (demands - failures) *. per_success)
  in
  let decision =
    if demands = 0 then Schema.Undecided
    else if log_lr >= log_a then Schema.Reject
    else if log_lr <= log_b then Schema.Accept
    else Schema.Undecided
  in
  { w_decision = decision; w_log_lr = log_lr; w_log_a = log_a; w_log_b = log_b }

type posterior = {
  post_mean : float;
  post_lo : float;
  post_hi : float;
  confidence_in_bound : float;
}

let posterior_of_counts config ~demands ~failures =
  let prior = Extensions.Beta_prior.create ~a:config.prior_a ~b:config.prior_b in
  let post = Extensions.Beta_prior.observe prior ~demands ~failures in
  let tail = (1.0 -. config.confidence) /. 2.0 in
  {
    post_mean = Extensions.Beta_prior.mean post;
    post_lo = Extensions.Beta_prior.quantile post tail;
    post_hi = Extensions.Beta_prior.quantile post (1.0 -. tail);
    confidence_in_bound = Extensions.Beta_prior.prob_at_most post config.bound;
  }

let drift t =
  match t.config.expected_profile with
  | None -> None
  | Some expected ->
      Some
        (Drift.assess ~expected ~counts:t.demand_counts
           ~alpha:t.config.drift_alpha)

let record_drift_alarm () = Obs.Metrics.incr m_drift_alarms

(* ------------------------------------------------------------------ *)
(* Accessors for verdict construction                                  *)
(* ------------------------------------------------------------------ *)

type plant_counts = { plant : int; demands : int; failures : int }

let plant_counts t =
  Hashtbl.fold
    (fun plant s acc ->
      { plant; demands = s.p_demands; failures = s.p_failures } :: acc)
    t.plants []
  |> List.sort (fun a b -> compare a.plant b.plant)

type fleet_counts = {
  f_plants : int;
  f_demands : int;
  f_failures : int;
  f_declared_plants : int;
  f_declared_failures : int;
  f_observes : int;
}

let fleet_counts t =
  let demands = ref 0 and failures = ref 0 in
  Hashtbl.iter
    (fun _ s ->
      demands := !demands + s.p_demands;
      failures := !failures + s.p_failures)
    t.plants;
  {
    f_plants = Hashtbl.length t.plants;
    f_demands = !demands;
    f_failures = !failures;
    f_declared_plants = t.declared_plants;
    f_declared_failures = t.declared_fleet_failures;
    f_observes = t.fleet_observes;
  }

type runner_counts = {
  r_runs : int;
  r_demands : int;
  r_failures : int;
  r_coincident : int;
  r_rng_draws : int;
}

let runner_counts t =
  {
    r_runs = t.runner_runs;
    r_demands = t.runner_demands;
    r_failures = t.runner_failures;
    r_coincident = t.runner_coincident;
    r_rng_draws = t.runner_rng_draws;
  }

type sprt_counts = {
  s_accepts : int;
  s_rejects : int;
  s_undecided : int;
  s_demands : int;
  s_failures : int;
}

let sprt_counts t =
  {
    s_accepts = t.sprt_accepts;
    s_rejects = t.sprt_rejects;
    s_undecided = t.sprt_undecided;
    s_demands = t.sprt_demands;
    s_failures = t.sprt_failures;
  }

type event_counts = {
  e_accepted : int;
  e_skipped : (string * int) list;  (** sorted by kind *)
  e_skipped_total : int;
  e_malformed : int;
}

let event_counts t =
  {
    e_accepted = t.accepted;
    e_skipped =
      Hashtbl.fold (fun kind n acc -> (kind, n) :: acc) t.skipped []
      |> List.sort compare;
    e_skipped_total = t.skipped_total;
    e_malformed = t.malformed;
  }

type run_meta = {
  starts : int;
  ends : int;
  seed : int option;
  shards : int option;
  target : string option;
}

let run_meta t =
  {
    starts = t.run_starts;
    ends = t.run_ends;
    seed = t.declared_seed;
    shards = t.declared_shards;
    target = t.declared_target;
  }

let demand_counts t = Array.copy t.demand_counts
