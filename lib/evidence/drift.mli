(** Demand-profile drift detection for proven-in-use arguments.

    Compares the empirical demand histogram accumulated from
    [runner.run] events against the declared operational profile with a
    Pearson chi-square goodness-of-fit test (small-expectation bins
    pooled, p-value via the Wilson-Hilferty approximation) and a KL
    divergence. Experiment E28 quantifies why this matters: the claimed
    PFD is only valid under the profile the evidence was collected on. *)

type result = {
  total : int;  (** demands in the empirical histogram *)
  chi_square : float;  (** Pearson statistic over the pooled bins *)
  dof : int;  (** pooled bins - 1 (>= 1) *)
  p_value : float;  (** upper-tail probability under H0: no drift *)
  kl_divergence : float;  (** sum q log(q/p) over the observed support *)
  impossible : int;
      (** demands observed where the declared profile has zero mass —
          always an alarm, kept out of the chi-square so the reported
          statistics stay finite *)
  alarm : bool;  (** [impossible > 0] or [p_value < alpha] *)
}

val assess : expected:float array -> counts:int array -> alpha:float -> result
(** [assess ~expected ~counts ~alpha] tests the observed demand counts
    (indexed by demand id; may be shorter or longer than [expected])
    against the declared profile probabilities. Deterministic: the
    result is a pure function of the arguments. Raises
    [Invalid_argument] if [alpha] is outside (0, 1), [expected] is empty
    or contains a negative/non-finite entry. An empty histogram returns
    [p_value = 1.0] and no alarm. *)

val chi_square_p_value : dof:int -> float -> float
(** Upper-tail chi-square probability (Wilson-Hilferty cube-root normal
    approximation; accurate to a few percent for [dof >= 1]). *)
