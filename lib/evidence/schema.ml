(* Typed view of the run-log event schema.

   The JSONL run log (Obs.Runlog) is a producer-side artefact: every
   instrumented site appends whatever fields it finds useful. This module
   is the consumer-side contract — the event kinds and required fields
   the proven-in-use assessor relies on (documented in EXPERIMENTS.md,
   "Run-log event schema"). Parsing is deliberately total: a line that is
   not valid JSON, not an object, or an object missing a required field
   of a consumed kind is [Malformed] (counted, never fatal — field
   evidence arrives damaged, and one bad line must not void months of
   operating history); a well-formed event of a kind the assessor does
   not consume is [Skipped] with its kind, so unknown schemas are visible
   in the verdict rather than silently dropped. *)

type sprt_outcome = Accept | Reject | Undecided

type event =
  | Run_start of { target : string; seed : int; shards : int }
  | Run_end of {
      target : string;
      seed : int;
      shards : int;
      rng_draws : int;
      duration_ns : int;
    }
  | Runner_run of {
      demands : int;
      system_failures : int;
      coincident_failures : int;
      rng_draws : int;
      demand_hist : (int * int) list;  (** ascending demand id, count > 0 *)
    }
  | Fleet_plant of {
      plant : int;
      demands : int;
      failures : int;
      true_pfd : float;
    }
  | Fleet_observe of {
      plants : int;
      demands_per_plant : int;
      failures : int;
    }
  | Sprt_decision of {
      decision : sprt_outcome;
      demands : int;
      failures : int;
      log_lr : float;
    }

type parsed =
  | Event of event
  | Skipped of string  (** well-formed event of an unconsumed kind *)
  | Malformed of string  (** diagnostic; the line is counted, not fatal *)

(* ------------------------------------------------------------------ *)
(* Field accessors returning [result] so parse failures carry context  *)
(* ------------------------------------------------------------------ *)

let field name json =
  match Obs.Json.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let int_field name json =
  Result.bind (field name json) (fun v ->
      match Obs.Json.to_int v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "field %S is not an integer" name))

let float_field name json =
  Result.bind (field name json) (fun v ->
      match Obs.Json.to_float v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "field %S is not a number" name))

let string_field name json =
  Result.bind (field name json) (fun v ->
      match Obs.Json.to_string v with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "field %S is not a string" name))

let ( let* ) = Result.bind

(* [demand_hist] is sparse: a list of [id, count] pairs. Absent or null
   is treated as empty (events logged before the field existed). *)
let demand_hist_field json =
  match Obs.Json.member "demand_hist" json with
  | None | Some Obs.Json.Null -> Ok []
  | Some v -> (
      match Obs.Json.to_list v with
      | None -> Error "field \"demand_hist\" is not a list"
      | Some items ->
          let rec pairs acc = function
            | [] -> Ok (List.rev acc)
            | item :: rest -> (
                match Obs.Json.to_list item with
                | Some [ id; count ] -> (
                    match (Obs.Json.to_int id, Obs.Json.to_int count) with
                    | Some id, Some count when id >= 0 && count > 0 ->
                        pairs ((id, count) :: acc) rest
                    | _ ->
                        Error
                          "field \"demand_hist\" entry is not a \
                           non-negative [id, count] pair")
                | _ -> Error "field \"demand_hist\" entry is not a pair")
          in
          pairs [] items)

let parse_kind kind json =
  match kind with
  | "run.start" ->
      let* target = string_field "target" json in
      let* seed = int_field "seed" json in
      let* shards = int_field "shards" json in
      Ok (Event (Run_start { target; seed; shards }))
  | "run.end" ->
      let* target = string_field "target" json in
      let* seed = int_field "seed" json in
      let* shards = int_field "shards" json in
      let* rng_draws = int_field "rng_draws" json in
      let* duration_ns = int_field "duration_ns" json in
      Ok (Event (Run_end { target; seed; shards; rng_draws; duration_ns }))
  | "runner.run" ->
      let* demands = int_field "demands" json in
      let* system_failures = int_field "system_failures" json in
      let* coincident_failures = int_field "coincident_failures" json in
      let* rng_draws = int_field "rng_draws" json in
      let* demand_hist = demand_hist_field json in
      if demands <= 0 then Error "field \"demands\" must be positive"
      else if system_failures < 0 || system_failures > demands then
        Error "field \"system_failures\" outside [0, demands]"
      else
        Ok
          (Event
             (Runner_run
                {
                  demands;
                  system_failures;
                  coincident_failures;
                  rng_draws;
                  demand_hist;
                }))
  | "fleet.plant" ->
      let* plant = int_field "plant" json in
      let* demands = int_field "demands" json in
      let* failures = int_field "failures" json in
      let* true_pfd = float_field "true_pfd" json in
      if plant < 0 then Error "field \"plant\" must be non-negative"
      else if demands <= 0 then Error "field \"demands\" must be positive"
      else if failures < 0 || failures > demands then
        Error "field \"failures\" outside [0, demands]"
      else Ok (Event (Fleet_plant { plant; demands; failures; true_pfd }))
  | "fleet.observe" ->
      let* plants = int_field "plants" json in
      let* demands_per_plant = int_field "demands_per_plant" json in
      let* failures = int_field "failures" json in
      Ok (Event (Fleet_observe { plants; demands_per_plant; failures }))
  | "sprt.decision" ->
      let* decision = string_field "decision" json in
      let* demands = int_field "demands" json in
      let* failures = int_field "failures" json in
      let* log_lr = float_field "log_lr" json in
      let* decision =
        match decision with
        | "accept" -> Ok Accept
        | "reject" -> Ok Reject
        | "undecided" -> Ok Undecided
        | other -> Error (Printf.sprintf "unknown SPRT decision %S" other)
      in
      Ok (Event (Sprt_decision { decision; demands; failures; log_lr }))
  | other -> Ok (Skipped other)

let parse_json json =
  match json with
  | Obs.Json.Obj _ -> (
      match Obs.Json.member "event" json with
      | None -> Malformed "object has no \"event\" field"
      | Some kind -> (
          match Obs.Json.to_string kind with
          | None -> Malformed "\"event\" field is not a string"
          | Some kind -> (
              match parse_kind kind json with
              | Ok parsed -> parsed
              | Error msg ->
                  Malformed (Printf.sprintf "event %S: %s" kind msg))))
  | _ -> Malformed "line is not a JSON object"

let parse_line line =
  if String.trim line = "" then Malformed "empty line"
  else
    match Obs.Json.parse line with
    | Ok json -> parse_json json
    | Error msg -> Malformed ("invalid JSON: " ^ msg)
