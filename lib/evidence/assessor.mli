(** Streaming proven-in-use assessor over the JSONL run log.

    Ingests run-log events (from a file read incrementally, or an
    in-memory {!Obs.Runlog.t}) in one pass, maintaining per-plant and
    per-fleet counters only; every judgement — Bayesian posterior PFD
    bounds (conjugate Beta, {!Extensions.Beta_prior}), the Wald
    ("SPRT-style") accept/reject boundary re-evaluated on the aggregate
    counts, demand-profile drift against the declared profile
    ({!Drift}) — is derived from those counters on demand. The final
    verdict is therefore a pure function of the multiset of ingested
    events: windowed streaming and batch ingestion agree byte for byte
    (property-tested, and asserted end-to-end for the CLI).

    Unlike the online {!Simulator.Sprt}, which stops at the first
    boundary crossing, the assessor sees aggregated counts and
    re-evaluates the boundary over all evidence so far — same
    hypotheses and thresholds, no stopping rule. *)

type config = {
  theta0 : float;  (** acceptable PFD (H0) *)
  theta1 : float;  (** rejectable PFD (H1), > theta0 *)
  alpha : float;  (** type-I error rate of the Wald boundary *)
  beta : float;  (** type-II error rate of the Wald boundary *)
  prior_a : float;  (** Beta prior: alpha parameter *)
  prior_b : float;  (** Beta prior: beta parameter *)
  bound : float;  (** PFD bound the posterior confidence is reported for *)
  confidence : float;  (** coverage of the reported posterior interval *)
  expected_profile : float array option;
      (** declared operational profile (probability by demand id); [None]
          disables drift detection *)
  drift_alpha : float;  (** drift alarm threshold on the chi-square p-value *)
}

val default_config : config
(** theta0 1e-3, theta1 1e-2, alpha = beta = 0.01, uniform Beta(1,1)
    prior, bound 1e-2, 90% interval, no declared profile, drift alarm at
    p < 1e-3. *)

type t

val create : config -> t
(** Raises [Invalid_argument] on an inconsistent configuration (see the
    field docs for the constraints). *)

val config : t -> config

(** {1 Ingest} *)

val ingest_line : t -> string -> unit
(** Classify and ingest one JSONL line. Never raises: malformed lines
    and unconsumed kinds are counted (and surfaced in the verdict and
    the [evidence.*] metrics), not fatal. *)

val ingest_json : t -> Obs.Json.t -> unit

val ingest_parsed : t -> Schema.parsed -> unit

val ingest_runlog : t -> Obs.Runlog.t -> unit
(** Ingest an in-memory run log in append order. *)

val ingest_batch : t -> string list -> unit
(** Ingest a batch of lines, timing the batch and feeding the
    [evidence.ingest_rate] histogram (events/second) when metrics are
    enabled. *)

(** {1 Derived judgements}

    Pure functions of the configuration and the accumulated counters —
    calling them (e.g. to render an interim verdict) never perturbs the
    assessor state. *)

type wald = {
  w_decision : Schema.sprt_outcome;
  w_log_lr : float;
  w_log_a : float;  (** reject boundary: log_lr >= log_a *)
  w_log_b : float;  (** accept boundary: log_lr <= log_b *)
}

val wald_of_counts : config -> demands:int -> failures:int -> wald

type posterior = {
  post_mean : float;
  post_lo : float;  (** lower end of the central [confidence] interval *)
  post_hi : float;  (** upper end of the central [confidence] interval *)
  confidence_in_bound : float;  (** posterior P(PFD <= bound) *)
}

val posterior_of_counts : config -> demands:int -> failures:int -> posterior

val drift : t -> Drift.result option
(** [None] when no profile was declared in the configuration. *)

val record_drift_alarm : unit -> unit
(** Bump the [evidence.drift_alarms] counter — called by the verdict
    layer when a rendered verdict carries an active alarm. *)

(** {1 Accessors for verdict construction} *)

type plant_counts = { plant : int; demands : int; failures : int }

val plant_counts : t -> plant_counts list
(** Sorted by plant id. *)

type fleet_counts = {
  f_plants : int;
  f_demands : int;
  f_failures : int;
  f_declared_plants : int;  (** max [plants] over fleet.observe events *)
  f_declared_failures : int;  (** sum of fleet.observe failure totals *)
  f_observes : int;  (** fleet.observe events seen *)
}

val fleet_counts : t -> fleet_counts

type runner_counts = {
  r_runs : int;
  r_demands : int;
  r_failures : int;
  r_coincident : int;
  r_rng_draws : int;
}

val runner_counts : t -> runner_counts

type sprt_counts = {
  s_accepts : int;
  s_rejects : int;
  s_undecided : int;
  s_demands : int;
  s_failures : int;
}

val sprt_counts : t -> sprt_counts

type event_counts = {
  e_accepted : int;
  e_skipped : (string * int) list;
  e_skipped_total : int;
  e_malformed : int;
}

val event_counts : t -> event_counts

type run_meta = {
  starts : int;
  ends : int;
  seed : int option;  (** first run.start seed seen *)
  shards : int option;
  target : string option;
}

val run_meta : t -> run_meta

val demand_counts : t -> int array
(** Copy of the accumulated empirical demand histogram (by id). *)
