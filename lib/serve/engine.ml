(* Request evaluation. [eval ~seed request] is a pure function of its
   two arguments: all randomness comes from a generator seeded here
   (salted per request for the fleet verb), every sharded computation
   runs with the shard count carried in the request (never a server
   default), and the whole evaluation happens inline on the calling
   domain via a private size-1 pool. That last point is what makes the
   service's byte-identity guarantee compositional — a dispatcher may
   run evaluations on any worker domain in any order and the bytes
   cannot change — and what makes the per-request draw meter exact:
   the [Rng.local_draws] delta around an inline evaluation counts
   precisely the draws this request consumed. *)

let ( let* ) r f = Result.bind r f

let jf f = Obs.Json.Float f

let moments_body u =
  let m = Core.Moments.compute u in
  Obs.Json.Obj
    [
      ("n", Obs.Json.Int (Core.Universe.size u));
      ("mu1", jf m.Core.Moments.mu1);
      ("mu2", jf m.Core.Moments.mu2);
      ("sigma1", jf m.Core.Moments.sigma1);
      ("sigma2", jf m.Core.Moments.sigma2);
      ("mean_gain", jf (Core.Moments.mean_gain u));
      ("expected_faults", jf (Core.Moments.expected_fault_count u));
      ("expected_common_faults", jf (Core.Moments.expected_common_fault_count u));
    ]

let risk_ratio_body u ~channels ~required =
  let arch = Core.Voting.create ~channels ~required in
  Obs.Json.Obj
    [
      ("n", Obs.Json.Int (Core.Universe.size u));
      ("channels", Obs.Json.Int channels);
      ("required", Obs.Json.Int required);
      ("mu", jf (Core.Voting.mu arch u));
      ("sigma", jf (Core.Voting.sigma arch u));
      ("p_some_system_fault", jf (Core.Voting.p_some_system_fault arch u));
      ("risk_ratio", jf (Core.Voting.risk_ratio_vs_single arch u));
    ]

let dist_summary ~kind dist =
  Obs.Json.Obj
    [
      ("kind", Obs.Json.String kind);
      ("size", Obs.Json.Int (Core.Pfd_dist.size dist));
      ("mean", jf (Core.Pfd_dist.mean dist));
      ("variance", jf (Core.Pfd_dist.variance dist));
      ("std", jf (Core.Pfd_dist.std dist));
      ("prob_positive", jf (Core.Pfd_dist.prob_positive dist));
      ("q50", jf (Core.Pfd_dist.quantile dist 0.50));
      ("q90", jf (Core.Pfd_dist.quantile dist 0.90));
      ("q99", jf (Core.Pfd_dist.quantile dist 0.99));
    ]

let pfd_dist_body pool u ~channels ~required ~bins =
  let n = Core.Universe.size u in
  let arch = Core.Voting.create ~channels ~required in
  let probs = Core.Voting.system_fault_probs arch u in
  let values = Core.Universe.qs u in
  if bins = 0 then
    if n > Core.Pfd_dist.max_exact_faults then
      Error
        (Printf.sprintf
           "exact pfd-dist limited to %d faults (got %d); request bins >= 2"
           Core.Pfd_dist.max_exact_faults n)
    else
      Ok
        (dist_summary ~kind:"exact"
           (Core.Pfd_dist.exact_of_vectors ~pool ~shards:1 ~probs ~values ()))
  else
    Ok
      (dist_summary ~kind:"grid"
         (Core.Pfd_dist.grid_of_vectors ~pool ~shards:1 ~probs ~values ~bins ()))

(* Realise the parameter-only universe as a concrete demand space:
   uniform profile over [space] cells, fault i's failure region a
   contiguous interval of round(q_i * space) cells (at least one) laid
   out end to end — disjoint by construction, which is the model's
   non-overlap assumption. *)
let space_of_universe (u : Proto.universe_spec) ~space =
  let n = Array.length u.Proto.ps in
  let faults = Array.make n None in
  let offset = ref 0 in
  let overflow = ref false in
  for i = 0 to n - 1 do
    let cells =
      max 1 (int_of_float (Float.round (u.Proto.qs.(i) *. float_of_int space)))
    in
    if !offset + cells > space then overflow := true
    else begin
      let region =
        Demandspace.Region.interval ~space_size:space ~lo:!offset
          ~hi:(!offset + cells - 1)
      in
      faults.(i) <- Some (region, u.Proto.ps.(i));
      offset := !offset + cells
    end
  done;
  if !overflow then
    Error
      (Printf.sprintf
         "universe too dense: fault regions need more than %d cells; raise \
          \"space\""
         space)
  else
    let faults =
      Array.map (function Some f -> f | None -> assert false) faults
    in
    Ok
      (Demandspace.Space.create
         ~profile:(Demandspace.Profile.uniform ~size:space)
         ~faults)

let fleet_mission_body pool ~seed u ~plants ~demands_per_plant ~mission_demands
    ~salt ~shards ~space =
  let* sp = space_of_universe u ~space in
  let rng = Numerics.Rng.split (Numerics.Rng.create ~seed) ~index:salt in
  let systems = Simulator.Fleet.deploy_pairs ~pool ~shards rng sp ~plants in
  let fleet = Simulator.Fleet.observe ~pool ~shards rng systems ~demands_per_plant in
  let pooled = Simulator.Fleet.pooled_rate fleet in
  let disp = Simulator.Fleet.dispersion fleet in
  let est_mean, est_var = Simulator.Fleet.estimate_pfd_moments fleet in
  Ok
    (Obs.Json.Obj
       [
         ("n", Obs.Json.Int (Array.length u.Proto.ps));
         ("plants", Obs.Json.Int plants);
         ("demands_per_plant", Obs.Json.Int demands_per_plant);
         ("shards", Obs.Json.Int shards);
         ("total_failures", Obs.Json.Int (Simulator.Fleet.total_failures fleet));
         ("pooled_rate", jf pooled);
         ("overdispersion", jf disp.Simulator.Fleet.overdispersion);
         ("est_pfd_mean", jf est_mean);
         ("est_pfd_variance", jf est_var);
         ( "mission_survival",
           jf
             (Simulator.Campaign.mission_survival_probability ~pfd:pooled
                ~mission_demands) );
       ])

let eval ~seed (r : Proto.request) =
  let draws0 = Numerics.Rng.local_draws () in
  (* Private inline pool: evaluation never leaves this domain, so the
     dispatcher can host it on any worker without nesting pools, and
     the draw delta below is exact. *)
  let pool = Exec.Pool.create ~domains:1 () in
  let body =
    try
      let u = Core.Universe.of_arrays ~p:r.Proto.u.Proto.ps ~q:r.Proto.u.Proto.qs in
      match r.Proto.verb with
      | Proto.Moments -> Ok (moments_body u)
      | Proto.Risk_ratio { channels; required } ->
          Ok (risk_ratio_body u ~channels ~required)
      | Proto.Pfd_dist { channels; required; bins } ->
          pfd_dist_body pool u ~channels ~required ~bins
      | Proto.Fleet_mission
          { plants; demands_per_plant; mission_demands; salt; shards; space } ->
          fleet_mission_body pool ~seed r.Proto.u ~plants ~demands_per_plant
            ~mission_demands ~salt ~shards ~space
    with
    | Invalid_argument msg -> Error msg
    | Failure msg -> Error msg
  in
  Exec.Pool.shutdown pool;
  let draws = Numerics.Rng.local_draws () - draws0 in
  match body with
  | Ok body ->
      Proto.ok_line ~id:r.Proto.id ~verb:(Proto.verb_name r) ~seed ~draws ~body
  | Error detail ->
      Proto.error_line ~id:r.Proto.id ~error:"unsupported" ~detail ()
