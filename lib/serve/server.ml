(* The assessment daemon: a single-threaded [Unix.select] event loop
   over a Unix-domain or loopback TCP listener, speaking the JSONL
   protocol of [Proto].

   Concurrency model: the event loop owns every socket, buffer, the
   admission queue and all instruments; parallelism lives exclusively
   inside [Dispatcher.run_batch] (an [Exec.Pool] batch that blocks the
   loop until joined). So there is exactly one thread of control
   touching mutable state, every instrument observation happens while
   the pool workers are parked (the single-writer rule of lib/obs),
   and the response bytes are those of [Engine.eval] — a pure function
   of (seed, request) — regardless of worker count, batching or
   arrival interleaving.

   Protocol invariant: every complete line received is answered with
   exactly one line (result, busy rejection, or error). A client that
   closes its connection forfeits its undelivered replies; nothing
   else is ever dropped or duplicated. *)

type listen = Unix_path of string | Tcp_port of int

type config = {
  listen : listen;
  workers : int;
  queue_capacity : int;
  batch_max : int;
  seed : int;
}

type stats = {
  served : int;
  rejected : int;
  malformed : int;
  batches : int;
  draws_total : int;
}

(* Longest inbound line tolerated before the connection is dropped as
   malformed: generous for the protocol's largest request (~50 KB at
   max_faults) yet bounding per-connection memory. *)
let max_line_bytes = 1 lsl 20

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  outbuf : Buffer.t;
  mutable out_ofs : int;
  mutable eof : bool;
  mutable dead : bool;
}

(* Server-side instruments, registered once per process (the registry
   is global and append-only; re-running [serve] in one process must
   not register duplicates). *)
type instruments = {
  m_queue_depth : Obs.Metrics.gauge;
  m_served : Obs.Metrics.counter;
  m_rejected : Obs.Metrics.counter;
  m_malformed : Obs.Metrics.counter;
  m_latency : (string * Obs.Metrics.histogram) list;
}

let instruments =
  lazy
    {
      m_queue_depth = Obs.Metrics.gauge "serve.queue_depth";
      m_served = Obs.Metrics.counter "serve.served_total";
      m_rejected = Obs.Metrics.counter "serve.rejected_total";
      m_malformed = Obs.Metrics.counter "serve.malformed_total";
      m_latency =
        List.map
          (fun v -> (v, Obs.Metrics.histogram ("serve.latency_s." ^ v)))
          [ "moments"; "risk-ratio"; "pfd-dist"; "fleet-mission" ];
    }

let mk_conn fd = { fd; inbuf = Buffer.create 512; outbuf = Buffer.create 512; out_ofs = 0; eof = false; dead = false }

let kill c =
  if not c.dead then begin
    c.dead <- true;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let pending_out c = Buffer.length c.outbuf - c.out_ofs > 0

let push_line c line =
  if not c.dead then begin
    Buffer.add_string c.outbuf line;
    Buffer.add_char c.outbuf '\n'
  end

let flush_conn c =
  if (not c.dead) && pending_out c then begin
    let data = Buffer.contents c.outbuf in
    let len = String.length data - c.out_ofs in
    match Unix.write_substring c.fd data c.out_ofs len with
    | n ->
        c.out_ofs <- c.out_ofs + n;
        if c.out_ofs = String.length data then begin
          Buffer.clear c.outbuf;
          c.out_ofs <- 0
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        kill c
  end

(* Drain complete lines out of the connection's input buffer, leaving
   any trailing partial line buffered. Trailing CR is stripped so CRLF
   clients work. *)
let split_lines c =
  let data = Buffer.contents c.inbuf in
  let n = String.length data in
  let lines = ref [] in
  let start = ref 0 in
  (try
     while true do
       let i = String.index_from data !start '\n' in
       let stop = if i > !start && data.[i - 1] = '\r' then i - 1 else i in
       lines := String.sub data !start (stop - !start) :: !lines;
       start := i + 1
     done
   with Not_found -> ());
  if !start > 0 then begin
    Buffer.clear c.inbuf;
    Buffer.add_substring c.inbuf data !start (n - !start)
  end;
  List.rev !lines

let serve ?on_ready config =
  if config.workers < 1 then invalid_arg "Server.serve: workers must be >= 1";
  if config.queue_capacity < 1 then
    invalid_arg "Server.serve: queue_capacity must be >= 1";
  if config.batch_max < 1 then invalid_arg "Server.serve: batch_max must be >= 1";
  let ins = Lazy.force instruments in
  (* A peer vanishing mid-write must surface as EPIPE, not a signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let draws0 = Numerics.Rng.total_draws () in
  let listener, actual_port, cleanup =
    match config.listen with
    | Unix_path path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        ( fd,
          None,
          fun () -> (try Unix.unlink path with Unix.Unix_error _ -> ()) )
    | Tcp_port port ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        let actual =
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> port
        in
        (fd, Some actual, fun () -> ())
  in
  Unix.listen listener 64;
  Unix.set_nonblock listener;
  (match on_ready with Some f -> f actual_port | None -> ());
  let pool = Exec.Pool.create ~domains:config.workers () in
  let disp = Dispatcher.create ~pool ~seed:config.seed in
  let queue : (conn * Proto.request) Admission.t =
    Admission.create ~capacity:config.queue_capacity
  in
  let conns = ref [] in
  let served = ref 0 in
  let malformed = ref 0 in
  let batches = ref 0 in
  let stopping = ref false in
  let scratch = Bytes.create 65536 in

  let stats_body () =
    Obs.Json.Obj
      [
        ("served", Obs.Json.Int !served);
        ("rejected", Obs.Json.Int (Admission.rejected queue));
        ("malformed", Obs.Json.Int !malformed);
        ("queue_depth", Obs.Json.Int (Admission.depth queue));
        ("queue_capacity", Obs.Json.Int (Admission.capacity queue));
        ("workers", Obs.Json.Int (Dispatcher.workers disp));
        ("draws_total", Obs.Json.Int (Numerics.Rng.total_draws () - draws0));
      ]
  in

  let handle_line c line =
    match Proto.parse_line line with
    | Error detail ->
        (* Malformed input is counted and answered, never fatal — the
           lib/evidence policy applied to the wire. *)
        incr malformed;
        Obs.Metrics.incr ins.m_malformed;
        push_line c (Proto.error_line ~error:"parse" ~detail ())
    | Ok (Proto.Admin { id; verb = Proto.Stats }) ->
        push_line c
          (Proto.ok_line ~id ~verb:"stats" ~seed:config.seed ~draws:0
             ~body:(stats_body ()))
    | Ok (Proto.Admin { id; verb = Proto.Shutdown }) ->
        push_line c
          (Proto.ok_line ~id ~verb:"shutdown" ~seed:config.seed ~draws:0
             ~body:(Obs.Json.Obj [ ("stopping", Obs.Json.Bool true) ]));
        stopping := true
    | Ok (Proto.Work req) -> (
        match Admission.offer queue (c, req) with
        | Admission.Admitted -> ()
        | Admission.Rejected { queue_depth } ->
            Obs.Metrics.incr ins.m_rejected;
            push_line c
              (Proto.busy_line ~id:req.Proto.id ~queue_depth
                 ~capacity:(Admission.capacity queue)))
  in

  let rec read_conn c =
    match Unix.read c.fd scratch 0 (Bytes.length scratch) with
    | 0 -> c.eof <- true
    | n ->
        Buffer.add_subbytes c.inbuf scratch 0 n;
        read_conn c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        kill c
  in

  let process_input c =
    List.iter (handle_line c) (split_lines c);
    if Buffer.length c.inbuf > max_line_bytes then begin
      incr malformed;
      Obs.Metrics.incr ins.m_malformed;
      push_line c
        (Proto.error_line ~error:"parse" ~detail:"line exceeds 1 MiB" ());
      flush_conn c;
      kill c
    end
  in

  let rec accept_all () =
    match Unix.accept listener with
    | fd, _ ->
        Unix.set_nonblock fd;
        conns := mk_conn fd :: !conns;
        accept_all ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> accept_all ()
  in

  let dispatch () =
    let batch = Admission.take_batch queue ~max:config.batch_max in
    if Array.length batch > 0 then begin
      incr batches;
      let results = Dispatcher.run_batch disp (Array.map snd batch) in
      Array.iteri
        (fun i (res : Dispatcher.result) ->
          let c, req = batch.(i) in
          incr served;
          Obs.Metrics.incr ins.m_served;
          (match List.assoc_opt (Proto.verb_name req) ins.m_latency with
          | Some h ->
              Obs.Metrics.observe h (Obs.Clock.ns_to_s res.Dispatcher.elapsed_ns)
          | None -> ());
          push_line c res.Dispatcher.line)
        results
    end;
    Obs.Metrics.set ins.m_queue_depth (float_of_int (Admission.depth queue))
  in

  let rec loop () =
    conns := List.filter (fun c -> not c.dead) !conns;
    let live = !conns in
    let finished =
      !stopping
      && Admission.depth queue = 0
      && List.for_all (fun c -> not (pending_out c)) live
    in
    if not finished then begin
      let reads =
        if !stopping then []
        else
          listener
          :: List.filter_map
               (fun c -> if c.eof then None else Some c.fd)
               live
      in
      let writes =
        List.filter_map (fun c -> if pending_out c then Some c.fd else None) live
      in
      let timeout =
        if Admission.depth queue > 0 then 0.0
        else if !stopping then 0.01
        else -1.0
      in
      let readable, _writable, _ =
        try Unix.select reads writes [] timeout
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      if List.memq listener readable then accept_all ();
      List.iter
        (fun c ->
          if (not c.dead) && List.memq c.fd readable then begin
            read_conn c;
            process_input c
          end)
        live;
      dispatch ();
      List.iter (fun c -> flush_conn c) !conns;
      List.iter
        (fun c -> if c.eof && not (pending_out c) then kill c)
        !conns;
      loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter kill !conns;
      (try Unix.close listener with Unix.Unix_error _ -> ());
      cleanup ();
      Exec.Pool.shutdown pool)
    loop;
  {
    served = !served;
    rejected = Admission.rejected queue;
    malformed = !malformed;
    batches = !batches;
    draws_total = Numerics.Rng.total_draws () - draws0;
  }
