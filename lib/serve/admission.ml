(* Bounded FIFO admission queue. Single-threaded by design: the server's
   event loop is the only caller, so no locks — the bound is the
   backpressure policy, not a concurrency device. Rejections are
   deterministic in the queue state ([depth >= capacity]), which is what
   lets the soak test assert exact accounting: every offered request is
   either admitted (and answered exactly once) or rejected with a
   well-formed retry-after. *)

type 'a t = {
  capacity : int;
  queue : 'a Queue.t;
  mutable accepted : int;
  mutable rejected : int;
}

type 'a verdict = Admitted | Rejected of { queue_depth : int }

let create ~capacity =
  if capacity < 1 then invalid_arg "Admission.create: capacity must be >= 1";
  { capacity; queue = Queue.create (); accepted = 0; rejected = 0 }

let capacity t = t.capacity
let depth t = Queue.length t.queue
let accepted t = t.accepted
let rejected t = t.rejected

let offer t x =
  let d = Queue.length t.queue in
  if d >= t.capacity then begin
    t.rejected <- t.rejected + 1;
    Rejected { queue_depth = d }
  end
  else begin
    Queue.push x t.queue;
    t.accepted <- t.accepted + 1;
    Admitted
  end

let take_batch t ~max =
  if max < 1 then invalid_arg "Admission.take_batch: max must be >= 1";
  let n = min max (Queue.length t.queue) in
  Array.init n (fun _ -> Queue.pop t.queue)
