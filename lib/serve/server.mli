(** The assessment daemon: JSONL over a Unix-domain or loopback TCP
    socket, single-threaded {!Unix.select} event loop.

    The loop owns every socket, buffer, the admission queue and all
    instruments; parallelism lives exclusively inside
    {!Dispatcher.run_batch}, which blocks the loop until the pool
    joins. Hence one thread of control over mutable state, instrument
    observations only while workers are parked (the lib/obs
    single-writer rule), and response bytes that are exactly
    {!Engine.eval}'s — pure in (seed, request) — for any worker count,
    batch composition or arrival interleaving.

    Protocol invariant: every complete line received is answered with
    exactly one line — a result envelope, a busy rejection carrying
    [queue_depth] and [retry_after_ms], or an error line. Malformed
    lines are counted and answered, never fatal. A client that closes
    its connection forfeits its undelivered replies; nothing else is
    dropped or duplicated.

    Registered instruments (global {!Obs.Metrics} registry, recorded
    when telemetry is enabled): [serve.queue_depth] gauge,
    [serve.served_total] / [serve.rejected_total] /
    [serve.malformed_total] counters, and per-verb
    [serve.latency_s.<verb>] histograms (seconds; p50/p95/p99 in the
    rendered summaries). *)

type listen =
  | Unix_path of string  (** Unix-domain socket path (unlinked on exit). *)
  | Tcp_port of int  (** Loopback TCP; [0] picks an ephemeral port. *)

type config = {
  listen : listen;
  workers : int;  (** {!Exec.Pool} size for the dispatcher. *)
  queue_capacity : int;  (** admission bound; past it, busy lines. *)
  batch_max : int;  (** most requests dispatched per pool batch. *)
  seed : int;  (** the seed every evaluation is pure in. *)
}

type stats = {
  served : int;  (** evaluated requests (exactly one response each). *)
  rejected : int;  (** admission rejections (busy lines). *)
  malformed : int;  (** unparseable lines (answered with error lines). *)
  batches : int;  (** pool batches dispatched. *)
  draws_total : int;
      (** exact RNG draws consumed over the server's lifetime
          ({!Numerics.Rng.total_draws} delta; workers flush at batch
          join, so this is exact). *)
}

val serve : ?on_ready:(int option -> unit) -> config -> stats
(** Run the daemon until a [shutdown] line is received, then drain the
    queue, flush replies and return the session's stats. [on_ready]
    fires once the socket is listening, with [Some port] for TCP (the
    actual port, after ephemeral resolution) or [None] for a
    Unix-domain path. Raises [Invalid_argument] on a non-positive
    [workers], [queue_capacity] or [batch_max]; [Unix.Unix_error] if
    the socket cannot be bound. *)
