(** Bounded FIFO admission queue — the service's backpressure policy.

    Single-threaded: the server's event loop is the only caller. The
    verdict is deterministic in the queue state (reject exactly when
    [depth t >= capacity t]), so a scripted client can predict — and a
    test assert — precisely which offers bounce. *)

type 'a t

type 'a verdict =
  | Admitted
  | Rejected of { queue_depth : int }
      (** [queue_depth] is the depth observed at rejection, which the
          server echoes (with {!Proto.retry_after_ms}) in the busy
          line. *)

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val offer : 'a t -> 'a -> 'a verdict
(** Enqueue, or reject when the queue is full. *)

val take_batch : 'a t -> max:int -> 'a array
(** Dequeue up to [max] items in FIFO order (possibly empty). *)

val capacity : 'a t -> int
val depth : 'a t -> int

val accepted : 'a t -> int
(** Offers admitted since creation. *)

val rejected : 'a t -> int
(** Offers rejected since creation. *)
