(* Batch dispatch onto an [Exec.Pool].

   The dispatcher groups a drained batch by verb kind — "batches
   compatible scenario evaluations" — so same-shaped work lands on the
   pool contiguously, then runs every evaluation as one pool batch and
   un-permutes the results back to the original slots. The grouping is
   pure scheduling: [Engine.eval] is a pure function of (seed, request)
   evaluated wholly on whichever domain hosts it, so batch composition,
   grouping and worker count are invisible in the response bytes.

   The global metrics flag is forced off for the duration of the pool
   batch: instruments inside the evaluated kernels would otherwise be
   mutated concurrently from several worker domains, violating the
   single-writer rule gauges and histograms rely on (lib/obs). The
   server observes its own instruments between batches, when every
   worker is parked. *)

type t = { pool : Exec.Pool.t; seed : int }

type result = { line : string; elapsed_ns : int64 }

let create ~pool ~seed = { pool; seed }

let seed t = t.seed
let workers t = Exec.Pool.size t.pool

let kind_rank (r : Proto.request) =
  match r.Proto.verb with
  | Proto.Moments -> 0
  | Proto.Risk_ratio _ -> 1
  | Proto.Pfd_dist _ -> 2
  | Proto.Fleet_mission _ -> 3

let run_batch t (requests : Proto.request array) =
  let n = Array.length requests in
  if n = 0 then [||]
  else begin
    (* Stable sort of the indices by verb kind: compatible evaluations
       become contiguous, ties keep arrival order. *)
    let order = Array.init n (fun i -> i) in
    Array.stable_sort
      (fun a b -> compare (kind_rank requests.(a)) (kind_rank requests.(b)))
      order;
    let was_enabled = Obs.Metrics.is_enabled () in
    Obs.Metrics.set_enabled false;
    let grouped =
      Fun.protect
        ~finally:(fun () -> Obs.Metrics.set_enabled was_enabled)
        (fun () ->
          Exec.Pool.run t.pool ~n (fun slot ->
              let req = requests.(order.(slot)) in
              let line, elapsed_ns =
                Obs.Clock.timed (fun () -> Engine.eval ~seed:t.seed req)
              in
              { line; elapsed_ns }))
    in
    let out = Array.make n grouped.(0) in
    Array.iteri (fun slot i -> out.(i) <- grouped.(slot)) order;
    out
  end
