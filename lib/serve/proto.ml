(* Line protocol of the assessment service: one JSON object per line,
   rendered and parsed exclusively through Obs.Json so the daemon, the
   one-shot CLI and every test share a single audited serializer. A
   request names a verb and carries the whole scenario inline (universe
   parameter vectors plus verb-specific knobs), which is what makes
   every response a pure function of (seed, request). *)

type universe_spec = { ps : float array; qs : float array }

type verb =
  | Moments
  | Risk_ratio of { channels : int; required : int }
  | Pfd_dist of { channels : int; required : int; bins : int }
  | Fleet_mission of {
      plants : int;
      demands_per_plant : int;
      mission_demands : int;
      salt : int;
      shards : int;
      space : int;
    }

type request = { id : string; u : universe_spec; verb : verb }
type admin = Stats | Shutdown
type line = Work of request | Admin of { id : string; verb : admin }

(* Hard protocol limits: a request that violates them is answered with
   an error line and never admitted, so a single client cannot buy an
   unbounded evaluation. *)
let max_faults = 1024
let max_channels = 16
let max_bins = 16384
let max_plants = 4096
let max_demands = 1_000_000
let max_mission = 1_000_000_000
let max_salt = 1 lsl 30
let max_shards = 64
let min_space = 16
let max_space = 65536
let max_id_len = 128

let verb_name r =
  match r.verb with
  | Moments -> "moments"
  | Risk_ratio _ -> "risk-ratio"
  | Pfd_dist _ -> "pfd-dist"
  | Fleet_mission _ -> "fleet-mission"

let admin_name = function Stats -> "stats" | Shutdown -> "shutdown"

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let json_of_floats a =
  Obs.Json.List (Array.to_list (Array.map (fun f -> Obs.Json.Float f) a))

let render_request r =
  let base =
    [
      ("id", Obs.Json.String r.id);
      ("verb", Obs.Json.String (verb_name r));
      ("p", json_of_floats r.u.ps);
      ("q", json_of_floats r.u.qs);
    ]
  in
  let extra =
    match r.verb with
    | Moments -> []
    | Risk_ratio { channels; required } ->
        [
          ("channels", Obs.Json.Int channels);
          ("required", Obs.Json.Int required);
        ]
    | Pfd_dist { channels; required; bins } ->
        [
          ("channels", Obs.Json.Int channels);
          ("required", Obs.Json.Int required);
          ("bins", Obs.Json.Int bins);
        ]
    | Fleet_mission
        { plants; demands_per_plant; mission_demands; salt; shards; space } ->
        [
          ("plants", Obs.Json.Int plants);
          ("demands", Obs.Json.Int demands_per_plant);
          ("mission", Obs.Json.Int mission_demands);
          ("salt", Obs.Json.Int salt);
          ("shards", Obs.Json.Int shards);
          ("space", Obs.Json.Int space);
        ]
  in
  Obs.Json.render (Obs.Json.Obj (base @ extra))

let render_admin ~id verb =
  Obs.Json.render
    (Obs.Json.Obj
       [
         ("id", Obs.Json.String id);
         ("verb", Obs.Json.String (admin_name verb));
       ])

(* ------------------------------------------------------------------ *)
(* Parsing and validation                                             *)
(* ------------------------------------------------------------------ *)

let ( let* ) r f = Result.bind r f

let field name json conv =
  match Option.bind (Obs.Json.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let int_field name json lo hi =
  let* v = field name json Obs.Json.to_int in
  if v < lo || v > hi then
    Error (Printf.sprintf "field %S out of range [%d, %d]" name lo hi)
  else Ok v

let float_array name json =
  let* items = field name json Obs.Json.to_list in
  let n = List.length items in
  if n = 0 then Error (Printf.sprintf "field %S is empty" name)
  else if n > max_faults then
    Error (Printf.sprintf "field %S exceeds %d faults" name max_faults)
  else
    let a = Array.make n 0.0 in
    let rec fill i = function
      | [] -> Ok a
      | item :: rest -> (
          match Obs.Json.to_float item with
          | Some f when Float.is_finite f ->
              a.(i) <- f;
              fill (i + 1) rest
          | _ -> Error (Printf.sprintf "field %S: non-finite entry" name))
    in
    fill 0 items

let universe_of json =
  let* ps = float_array "p" json in
  let* qs = float_array "q" json in
  if Array.length ps <> Array.length qs then
    Error "fields \"p\" and \"q\" have different lengths"
  else if Array.exists (fun p -> p < 0.0 || p > 1.0) ps then
    Error "field \"p\": probability outside [0, 1]"
  else if Array.exists (fun q -> q < 0.0 || q > 1.0) qs then
    Error "field \"q\": region measure outside [0, 1]"
  else Ok { ps; qs }

let arch_of json =
  let* channels = int_field "channels" json 1 max_channels in
  let* required = int_field "required" json 1 channels in
  Ok (channels, required)

let parse_line s =
  let* json =
    match Obs.Json.parse s with
    | Ok j -> Ok j
    | Error e -> Error ("malformed JSON: " ^ e)
  in
  let* id = field "id" json Obs.Json.to_string in
  if id = "" || String.length id > max_id_len then
    Error "field \"id\" must be a non-empty string of at most 128 bytes"
  else
    let* verb = field "verb" json Obs.Json.to_string in
    match verb with
    | "stats" -> Ok (Admin { id; verb = Stats })
    | "shutdown" -> Ok (Admin { id; verb = Shutdown })
    | "moments" ->
        let* u = universe_of json in
        Ok (Work { id; u; verb = Moments })
    | "risk-ratio" ->
        let* u = universe_of json in
        let* channels, required = arch_of json in
        Ok (Work { id; u; verb = Risk_ratio { channels; required } })
    | "pfd-dist" ->
        let* u = universe_of json in
        let* channels, required = arch_of json in
        let* bins = int_field "bins" json 0 max_bins in
        if bins = 1 then Error "field \"bins\" must be 0 (exact) or >= 2"
        else Ok (Work { id; u; verb = Pfd_dist { channels; required; bins } })
    | "fleet-mission" ->
        let* u = universe_of json in
        let* plants = int_field "plants" json 1 max_plants in
        let* demands_per_plant = int_field "demands" json 1 max_demands in
        let* mission_demands = int_field "mission" json 1 max_mission in
        let* salt = int_field "salt" json 0 max_salt in
        let* shards = int_field "shards" json 1 max_shards in
        let* space = int_field "space" json min_space max_space in
        Ok
          (Work
             {
               id;
               u;
               verb =
                 Fleet_mission
                   {
                     plants;
                     demands_per_plant;
                     mission_demands;
                     salt;
                     shards;
                     space;
                   };
             })
    | other -> Error (Printf.sprintf "unknown verb %S" other)

let equal_floats a b =
  Array.length a = Array.length b
  &&
  let rec go i =
    i >= Array.length a || (Float.equal a.(i) b.(i) && go (i + 1))
  in
  go 0

let equal_request a b =
  String.equal a.id b.id
  && equal_floats a.u.ps b.u.ps
  && equal_floats a.u.qs b.u.qs
  &&
  match (a.verb, b.verb) with
  | Moments, Moments -> true
  | Risk_ratio x, Risk_ratio y ->
      x.channels = y.channels && x.required = y.required
  | Pfd_dist x, Pfd_dist y ->
      x.channels = y.channels && x.required = y.required && x.bins = y.bins
  | Fleet_mission x, Fleet_mission y ->
      x.plants = y.plants
      && x.demands_per_plant = y.demands_per_plant
      && x.mission_demands = y.mission_demands
      && x.salt = y.salt && x.shards = y.shards && x.space = y.space
  | _ -> false

let pp_request ppf r = Format.pp_print_string ppf (render_request r)

(* ------------------------------------------------------------------ *)
(* Responses                                                          *)
(* ------------------------------------------------------------------ *)

(* Every line the service receives is answered with exactly one
   response line: a result envelope, a busy rejection, or an error.
   The envelope field order is fixed, so equal responses are equal
   bytes — the unit the byte-identity oracle compares. *)

let ok_line ~id ~verb ~seed ~draws ~body =
  Obs.Json.render
    (Obs.Json.Obj
       [
         ("id", Obs.Json.String id);
         ("ok", Obs.Json.Bool true);
         ("verb", Obs.Json.String verb);
         ("seed", Obs.Json.Int seed);
         ("draws", Obs.Json.Int draws);
         ("body", body);
       ])

let error_line ?id ~error ~detail () =
  Obs.Json.render
    (Obs.Json.Obj
       [
         ( "id",
           match id with Some i -> Obs.Json.String i | None -> Obs.Json.Null
         );
         ("ok", Obs.Json.Bool false);
         ("error", Obs.Json.String error);
         ("detail", Obs.Json.String detail);
       ])

(* Deterministic admission advice: the further past the watermark the
   queue is, the longer the suggested backoff; always at least 1 ms so
   a well-formed retry-after is distinguishable from "retry now". *)
let retry_after_ms ~queue_depth ~capacity =
  1 + (64 * queue_depth / max 1 capacity)

let busy_line ~id ~queue_depth ~capacity =
  Obs.Json.render
    (Obs.Json.Obj
       [
         ("id", Obs.Json.String id);
         ("ok", Obs.Json.Bool false);
         ("error", Obs.Json.String "busy");
         ("queue_depth", Obs.Json.Int queue_depth);
         ("retry_after_ms", Obs.Json.Int (retry_after_ms ~queue_depth ~capacity));
       ])

type response = {
  resp_id : string option;
  resp_ok : bool;
  resp_verb : string option;
  resp_seed : int option;
  resp_draws : int option;
  resp_body : Obs.Json.t option;
  resp_error : string option;
  resp_detail : string option;
  resp_queue_depth : int option;
  resp_retry_after_ms : int option;
}

let parse_response s =
  let* json =
    match Obs.Json.parse s with
    | Ok j -> Ok j
    | Error e -> Error ("malformed response JSON: " ^ e)
  in
  let* ok = field "ok" json (function Obs.Json.Bool b -> Some b | _ -> None) in
  let str name = Option.bind (Obs.Json.member name json) Obs.Json.to_string in
  let int name = Option.bind (Obs.Json.member name json) Obs.Json.to_int in
  Ok
    {
      resp_id = str "id";
      resp_ok = ok;
      resp_verb = str "verb";
      resp_seed = int "seed";
      resp_draws = int "draws";
      resp_body = Obs.Json.member "body" json;
      resp_error = str "error";
      resp_detail = str "detail";
      resp_queue_depth = int "queue_depth";
      resp_retry_after_ms = int "retry_after_ms";
    }
