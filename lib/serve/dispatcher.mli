(** Batch dispatch of admitted requests onto an {!Exec.Pool}.

    A drained batch is grouped by verb kind (stable, arrival order
    within a kind) so compatible scenario evaluations run contiguously,
    evaluated as one pool batch, and un-permuted back to arrival slots.
    Grouping and worker count are pure scheduling: every evaluation is
    {!Engine.eval}, a pure function of (seed, request), so the response
    bytes are identical for any pool size and any batch composition.

    The global {!Obs.Metrics} flag is forced off while the pool batch
    runs (and restored after): kernel-level instruments would otherwise
    be written concurrently from several worker domains, violating the
    single-writer rule. Server-side instruments are observed between
    batches, when the workers are parked. *)

type t

type result = {
  line : string;  (** the response line, ready to write *)
  elapsed_ns : int64;  (** evaluation latency of this request *)
}

val create : pool:Exec.Pool.t -> seed:int -> t

val seed : t -> int

val workers : t -> int
(** Pool size, including the calling domain. *)

val run_batch : t -> Proto.request array -> result array
(** Evaluate a batch; results in the same order as the input. Blocks
    until the whole batch is done. *)
