(** Line protocol of the assessment service.

    One JSON object per line, in both directions, rendered and parsed
    through {!Obs.Json} so the daemon, the one-shot CLI and the tests
    share a single serializer. A request carries the whole scenario
    inline — universe parameter vectors plus verb-specific knobs — so a
    response is a pure function of (seed, request): no server-side
    session state, hence byte-identical answers for any worker count,
    batching or arrival order. Every line received is answered with
    exactly one line. *)

type universe_spec = { ps : float array; qs : float array }
(** Fault universe as parallel vectors: [ps.(i)] is the probability
    fault [i] is created, [qs.(i)] the measure of its failure region. *)

type verb =
  | Moments  (** Difficulty-function moments and diversity gain. *)
  | Risk_ratio of { channels : int; required : int }
      (** [required]-out-of-[channels] system PFD moments and the risk
          ratio versus a single channel. *)
  | Pfd_dist of { channels : int; required : int; bins : int }
      (** PFD distribution summary; [bins = 0] requests the exact
          enumeration (small universes only), [bins >= 2] the gridded
          distribution. *)
  | Fleet_mission of {
      plants : int;
      demands_per_plant : int;
      mission_demands : int;
      salt : int;
      shards : int;
      space : int;
    }
      (** Simulated fleet deployment and observation followed by the
          closed-form mission survival probability. [salt] selects the
          RNG substream, [shards] the fixed shard count (part of the
          request, so the answer never depends on server defaults),
          [space] the synthetic demand-space size. *)

type request = { id : string; u : universe_spec; verb : verb }
type admin = Stats | Shutdown

type line = Work of request | Admin of { id : string; verb : admin }
(** A parsed inbound line: either an assessment request or an admin
    verb (admin verbs bypass the admission queue). *)

(** {1 Protocol limits}

    Violations are answered with an error line and never admitted. *)

val max_faults : int
val max_channels : int
val max_bins : int
val max_plants : int
val max_demands : int
val max_mission : int
val max_salt : int
val max_shards : int
val min_space : int
val max_space : int
val max_id_len : int

(** {1 Requests} *)

val verb_name : request -> string
(** Wire name of the request's verb ("moments", "risk-ratio",
    "pfd-dist", "fleet-mission"). *)

val render_request : request -> string
(** Canonical single-line rendering (no trailing newline). *)

val render_admin : id:string -> admin -> string
(** Canonical rendering of an admin line. *)

val parse_line : string -> (line, string) result
(** Parse and validate one inbound line. [parse_line (render_request r)]
    yields [Ok (Work r')] with [equal_request r r'] for every request
    within the protocol limits — the codec round-trip property. *)

val equal_request : request -> request -> bool
(** Structural equality ([Float.equal] per vector entry, so NaN-safe
    and signed-zero-exact). *)

val pp_request : Format.formatter -> request -> unit

(** {1 Responses} *)

val ok_line :
  id:string -> verb:string -> seed:int -> draws:int -> body:Obs.Json.t -> string
(** Success envelope [{"id","ok":true,"verb","seed","draws","body"}] in
    fixed field order — equal responses are equal bytes. *)

val error_line : ?id:string -> error:string -> detail:string -> unit -> string
(** Failure envelope; [id] is [null] when the offending line had none
    recoverable. *)

val retry_after_ms : queue_depth:int -> capacity:int -> int
(** Deterministic backoff advice attached to busy rejections: at least
    1 ms, growing linearly with how far past capacity the queue is. *)

val busy_line : id:string -> queue_depth:int -> capacity:int -> string
(** Admission rejection carrying [queue_depth] and [retry_after_ms]. *)

type response = {
  resp_id : string option;
  resp_ok : bool;
  resp_verb : string option;
  resp_seed : int option;
  resp_draws : int option;
  resp_body : Obs.Json.t option;
  resp_error : string option;
  resp_detail : string option;
  resp_queue_depth : int option;
  resp_retry_after_ms : int option;
}
(** Flattened view of a response line, for clients and tests. *)

val parse_response : string -> (response, string) result
