(* Blocking scripted client for tests, the CLI client mode and the
   throughput bench: connect (with retry while the daemon binds its
   socket), send lines, read newline-delimited replies. One [t] per
   thread — the buffer is not shared. *)

type t = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  scratch : Bytes.t;
  mutable at_eof : bool;
}

let addr_of = function
  | Server.Unix_path path -> Unix.ADDR_UNIX path
  | Server.Tcp_port port ->
      Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let connect ?(attempts = 100) ?(delay_s = 0.02) listen =
  let addr = addr_of listen in
  let rec go n =
    let fd =
      Unix.socket
        (match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET)
        Unix.SOCK_STREAM 0
    in
    match Unix.connect fd addr with
    | () ->
        { fd; buf = Buffer.create 512; scratch = Bytes.create 8192; at_eof = false }
    | exception
        Unix.Unix_error
          ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN), _, _)
      when n > 1 ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf delay_s;
        go (n - 1)
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  if attempts < 1 then invalid_arg "Client.connect: attempts must be >= 1";
  go attempts

let send_line t line =
  let payload = line ^ "\n" in
  let len = String.length payload in
  let rec write ofs =
    if ofs < len then
      let n = Unix.write_substring t.fd payload ofs (len - ofs) in
      write (ofs + n)
  in
  write 0

(* One complete line (terminator stripped), or [None] at server EOF. *)
let recv_line t =
  let take_line () =
    let data = Buffer.contents t.buf in
    match String.index_opt data '\n' with
    | None -> None
    | Some i ->
        let stop = if i > 0 && data.[i - 1] = '\r' then i - 1 else i in
        let line = String.sub data 0 stop in
        Buffer.clear t.buf;
        Buffer.add_substring t.buf data (i + 1) (String.length data - i - 1);
        Some line
  in
  let rec go () =
    match take_line () with
    | Some line -> Some line
    | None ->
        if t.at_eof then None
        else begin
          (match Unix.read t.fd t.scratch 0 (Bytes.length t.scratch) with
          | 0 -> t.at_eof <- true
          | n -> Buffer.add_subbytes t.buf t.scratch 0 n
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
              t.at_eof <- true);
          go ()
        end
  in
  go ()

let close t =
  if not t.at_eof then t.at_eof <- true;
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let round_trip t line =
  send_line t line;
  recv_line t
