(** Request evaluation: the service's single source of answers.

    [eval ~seed request] is a pure function of its two arguments —
    every response line the daemon, the one-shot CLI and the oracles
    produce for a given (seed, request) pair is byte-identical. The
    evaluation runs wholly inline on the calling domain (a private
    size-1 pool; sharded kernels use the shard count carried in the
    request, never a server default), so a dispatcher may host it on
    any worker domain, in any batch, in any order, without perturbing
    a byte — and the per-request draw count reported in the response
    is the exact {!Numerics.Rng.local_draws} delta around the
    evaluation. *)

val eval : seed:int -> Proto.request -> string
(** The response line (no trailing newline): a success envelope
    ({!Proto.ok_line}) carrying the verb's result body, or an error
    envelope ([error = "unsupported"]) when the request is valid
    protocol but outside the engine's limits (e.g. exact PFD
    enumeration beyond {!Core.Pfd_dist.max_exact_faults} faults, or a
    universe too dense for the requested demand-space size). Never
    raises on a validated request. *)
