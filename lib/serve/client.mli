(** Blocking scripted client: the test harness's, CLI client mode's and
    throughput bench's view of the daemon.

    One [t] per thread — the receive buffer is not shared. *)

type t

val connect : ?attempts:int -> ?delay_s:float -> Server.listen -> t
(** Connect to a daemon, retrying (default 100 attempts, 20 ms apart)
    while the socket is not yet bound — the startup race of launching a
    daemon and connecting to it. Raises the last [Unix.Unix_error] when
    the attempts are exhausted. *)

val send_line : t -> string -> unit
(** Send one request line (terminator appended). *)

val recv_line : t -> string option
(** Next complete response line (terminator stripped), blocking;
    [None] once the server has closed the connection. *)

val round_trip : t -> string -> string option
(** [send_line] then [recv_line] — the synchronous request/reply
    cycle. *)

val close : t -> unit
