let pair_pfd ~single_pfd = single_pfd *. single_pfd

let predicted_mu2 u =
  let m1 = Core.Moments.mu1 u in
  m1 *. m1

let underestimation_factor u =
  let indep = predicted_mu2 u in
  if Numerics.Stats.is_zero indep then nan else Core.Moments.mu2 u /. indep

let model_gain u =
  let m2 = Core.Moments.mu2 u in
  if Numerics.Stats.is_zero m2 then infinity else Core.Moments.mu1 u /. m2

let independence_gain u =
  let m1 = Core.Moments.mu1 u in
  if Numerics.Stats.is_zero m1 then infinity else 1.0 /. m1

let eq4_beats_independence u = Core.Universe.pmax u <= Core.Moments.mu1 u
