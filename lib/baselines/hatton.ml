type comparison = {
  improvement_factor : float;
  single_improved_mu : float;
  pair_mu : float;
  diversity_wins_mean : bool;
  single_improved_bound : float;
  pair_bound : float;
  diversity_wins_bound : bool;
}

let compare_at u ~improvement_factor ~k =
  if improvement_factor < 0.0 || improvement_factor > 1.0 then
    invalid_arg "Hatton.compare_at: improvement factor must lie in [0, 1]";
  let improved = Core.Universe.scale_all_p u improvement_factor in
  let single_improved_mu = Core.Moments.mu1 improved in
  let pair_mu = Core.Moments.mu2 u in
  let single_improved_bound =
    Core.Normal_approx.single_bound improved ~k
  in
  let pair_bound = Core.Normal_approx.pair_bound u ~k in
  {
    improvement_factor;
    single_improved_mu;
    pair_mu;
    diversity_wins_mean = pair_mu < single_improved_mu;
    single_improved_bound;
    pair_bound;
    diversity_wins_bound = pair_bound < single_improved_bound;
  }

let break_even_factor u =
  (* The uniform improvement factor at which one better version matches
     the 1-out-of-2 pair on mean PFD. With p_i -> f*p_i the improved single
     version has mean f*mu1, so the break-even is mu2/mu1 — which eq. (4)
     bounds above by pmax: a single version must beat the process's worst
     fault probability to match diversity on averages. *)
  let m1 = Core.Moments.mu1 u in
  if Numerics.Stats.is_zero m1 then nan else Core.Moments.mu2 u /. m1

let sweep u ~k ~factors =
  Array.map (fun f -> compare_at u ~improvement_factor:f ~k) factors
