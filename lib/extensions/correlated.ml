open Numerics

type cluster = {
  shock_prob : float;
  faults : (float * float * float) array; (* (hi, lo, q) per fault *)
}

type t = { clusters : cluster array }

let check_prob name x =
  if Float.is_nan x || x < 0.0 || x > 1.0 then
    invalid_arg ("Correlated: " ^ name ^ " outside [0, 1]")

let create clusters =
  if Array.length clusters = 0 then invalid_arg "Correlated.create: no clusters";
  Array.iter
    (fun c ->
      check_prob "shock_prob" c.shock_prob;
      if Array.length c.faults = 0 then
        invalid_arg "Correlated.create: empty cluster";
      Array.iter
        (fun (hi, lo, q) ->
          check_prob "hi" hi;
          check_prob "lo" lo;
          check_prob "q" q)
        c.faults)
    clusters;
  { clusters = Array.copy clusters }

let marginal_p ~shock_prob ~hi ~lo = (shock_prob *. hi) +. ((1.0 -. shock_prob) *. lo)

let of_universe_with_shock u ~cluster_size ~shock_prob ~lift =
  (* Partition the universe into clusters; inside each, a "common conceptual
     error" occurring with [shock_prob] lifts every fault's probability by
     the factor [lift], with the quiet-state probability chosen to keep the
     marginal p_i unchanged — so means are comparable with the independent
     model by construction. *)
  if cluster_size <= 0 then
    invalid_arg "Correlated.of_universe_with_shock: cluster_size must be positive";
  check_prob "shock_prob" shock_prob;
  if lift < 1.0 then
    invalid_arg "Correlated.of_universe_with_shock: lift must be >= 1";
  let n = Core.Universe.size u in
  let clusters = ref [] in
  let i = ref 0 in
  while !i < n do
    let members = min cluster_size (n - !i) in
    let faults =
      Array.init members (fun j ->
          let f = Core.Universe.fault u (!i + j) in
          let p = Core.Fault.p f and q = Core.Fault.q f in
          let hi = min 1.0 (lift *. p) in
          let lo =
            if shock_prob >= 1.0 then hi
            else (p -. (shock_prob *. hi)) /. (1.0 -. shock_prob)
          in
          if lo < 0.0 then
            invalid_arg
              "Correlated.of_universe_with_shock: lift too large for the \
               shock probability (marginal not preservable)";
          (hi, lo, q))
    in
    clusters := { shock_prob; faults } :: !clusters;
    i := !i + members
  done;
  create (Array.of_list (List.rev !clusters))

let fault_count t =
  Array.fold_left (fun acc c -> acc + Array.length c.faults) 0 t.clusters

let marginal_universe t =
  let ps = ref [] and qs = ref [] in
  Array.iter
    (fun c ->
      Array.iter
        (fun (hi, lo, q) ->
          ps := marginal_p ~shock_prob:c.shock_prob ~hi ~lo :: !ps;
          qs := q :: !qs)
        c.faults)
    t.clusters;
  Core.Universe.of_arrays
    ~p:(Array.of_list (List.rev !ps))
    ~q:(Array.of_list (List.rev !qs))

let mu1 t = Core.Moments.mu1 (marginal_universe t)
let mu2 t = Core.Moments.mu2 (marginal_universe t)

let var1 t =
  (* Per cluster: Var(sum X_i q_i) with the X_i conditionally independent
     given the shock. Cov(X_i, X_j) = E[X_i X_j] - p_i p_j with
     E[X_i X_j] = w hi_i hi_j + (1-w) lo_i lo_j for i <> j. *)
  Kahan.sum_over (Array.length t.clusters) (fun ci ->
      let c = t.clusters.(ci) in
      let w = c.shock_prob in
      let m = Array.length c.faults in
      let acc = Kahan.create () in
      for i = 0 to m - 1 do
        let hi_i, lo_i, q_i = c.faults.(i) in
        let p_i = marginal_p ~shock_prob:w ~hi:hi_i ~lo:lo_i in
        Kahan.add acc (p_i *. (1.0 -. p_i) *. q_i *. q_i);
        for j = 0 to m - 1 do
          if j <> i then begin
            let hi_j, lo_j, q_j = c.faults.(j) in
            let p_j = marginal_p ~shock_prob:w ~hi:hi_j ~lo:lo_j in
            let e_ij = (w *. hi_i *. hi_j) +. ((1.0 -. w) *. lo_i *. lo_j) in
            Kahan.add acc ((e_ij -. (p_i *. p_j)) *. q_i *. q_j)
          end
        done
      done;
      Kahan.total acc)

let sigma1 t = sqrt (var1 t)

let p_n1_zero t =
  (* Clusters are independent; within a cluster, condition on the shock. *)
  exp
    (Kahan.sum_over (Array.length t.clusters) (fun ci ->
         let c = t.clusters.(ci) in
         let w = c.shock_prob in
         let none probs =
           exp
             (Kahan.sum_over (Array.length c.faults) (fun i ->
                  Special.log1p (-.probs i)))
         in
         let none_hi = none (fun i -> let hi, _, _ = c.faults.(i) in hi) in
         let none_lo = none (fun i -> let _, lo, _ = c.faults.(i) in lo) in
         log ((w *. none_hi) +. ((1.0 -. w) *. none_lo))))

let p_n2_zero t =
  (* Two independent versions; condition on both shock indicators. Given
     the pair (sA, sB) of shock states, faults are independent and fault i
     is common with probability pi(sA) * pi(sB). *)
  exp
    (Kahan.sum_over (Array.length t.clusters) (fun ci ->
         let c = t.clusters.(ci) in
         let w = c.shock_prob in
         let prob_of_state s i =
           let hi, lo, _ = c.faults.(i) in
           if s then hi else lo
         in
         let none_given sa sb =
           exp
             (Kahan.sum_over (Array.length c.faults) (fun i ->
                  Special.log1p (-.(prob_of_state sa i *. prob_of_state sb i))))
         in
         let states = [ (true, w); (false, 1.0 -. w) ] in
         let total = Kahan.create () in
         List.iter
           (fun (sa, wa) ->
             List.iter
               (fun (sb, wb) -> Kahan.add total (wa *. wb *. none_given sa sb))
               states)
           states;
         log (Kahan.total total)))

let p_n1_pos t = 1.0 -. p_n1_zero t
let p_n2_pos t = 1.0 -. p_n2_zero t

let risk_ratio t =
  let denom = p_n1_pos t in
  if Stats.is_zero denom then nan else p_n2_pos t /. denom

let sample_version rng t =
  let present = ref [] in
  let base = ref 0 in
  Array.iter
    (fun c ->
      let shocked = Rng.bool rng ~p:c.shock_prob in
      Array.iteri
        (fun i (hi, lo, _) ->
          let p = if shocked then hi else lo in
          if Rng.bool rng ~p then present := (!base + i) :: !present)
        c.faults;
      base := !base + Array.length c.faults)
    t.clusters;
  List.rev !present

let qs t =
  let out = ref [] in
  Array.iter
    (fun c -> Array.iter (fun (_, _, q) -> out := q :: !out) c.faults)
    t.clusters;
  Array.of_list (List.rev !out)

let sample_pair_pfd rng t =
  let q = qs t in
  let a = sample_version rng t and b = sample_version rng t in
  let pfd_of l = Kahan.sum_list (List.map (fun i -> q.(i)) l) in
  let common = List.filter (fun i -> List.mem i b) a in
  (pfd_of a, pfd_of common)
