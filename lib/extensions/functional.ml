open Numerics
module Transform = Demandspace.Transform

type t = {
  space : Demandspace.Space.t;
  sensing_b : Transform.t;
}

let create space ~sensing_b =
  if Transform.size sensing_b <> Demandspace.Space.size space then
    invalid_arg "Functional.create: transform over a different space";
  { space; sensing_b }

let non_functional space =
  { space; sensing_b = Transform.identity (Demandspace.Space.size space) }

let space t = t.space
let sensing_b t = t.sensing_b

let mean_single t = Baselines.Eckhardt_lee.mean_single t.space

let mean_pair t =
  (* Channel A sees the demand directly, channel B through its sensing
     bijection; the versions are developed independently, so
     E(Theta_2) = sum_x pi(x) theta(x) theta(T(x)). *)
  let profile = Demandspace.Space.profile t.space in
  Kahan.sum_over (Demandspace.Space.size t.space) (fun x ->
      Demandspace.Profile.probability profile (Demandspace.Demand.of_int x)
      *. Baselines.Eckhardt_lee.difficulty t.space x
      *. Baselines.Eckhardt_lee.difficulty t.space
           (Transform.apply t.sensing_b x))

let functional_gain t =
  let worst = mean_pair (non_functional t.space) in
  let actual = mean_pair t in
  if Stats.is_zero actual then infinity else worst /. actual

let pair_pfd_of_versions t va vb =
  (* Concrete developed pair: the system fails on x iff A's version fails
     on x and B's fails on T(x). *)
  let fb_plant =
    Transform.preimage t.sensing_b (Demandspace.Version.failure_set vb)
  in
  let joint = Bitset.inter (Demandspace.Version.failure_set va) fb_plant in
  Demandspace.Profile.measure (Demandspace.Space.profile t.space) joint

let sample_pair_pfd rng t =
  let develop () =
    let present = ref [] in
    for i = Demandspace.Space.fault_count t.space - 1 downto 0 do
      if Rng.bool rng ~p:(Demandspace.Space.introduction_prob t.space i) then
        present := i :: !present
    done;
    Demandspace.Version.create t.space !present
  in
  pair_pfd_of_versions t (develop ()) (develop ())

let continuum rng space ~fractions =
  Array.map
    (fun fraction ->
      let sensing_b =
        Transform.partial rng (Demandspace.Space.size space) ~fraction
      in
      let model = create space ~sensing_b in
      (fraction, mean_pair model))
    fractions
