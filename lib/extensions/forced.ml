open Numerics

type t = { qs : float array; pa : float array; pb : float array }

let create ~qs ~pa ~pb =
  let n = Array.length qs in
  if n = 0 then invalid_arg "Forced.create: empty universe";
  if Array.length pa <> n || Array.length pb <> n then
    invalid_arg "Forced.create: vector length mismatch";
  let check name v =
    Array.iter
      (fun x ->
        if Float.is_nan x || x < 0.0 || x > 1.0 then
          invalid_arg ("Forced.create: " ^ name ^ " outside [0, 1]"))
      v
  in
  check "qs" qs;
  check "pa" pa;
  check "pb" pb;
  { qs = Array.copy qs; pa = Array.copy pa; pb = Array.copy pb }

let of_universe u =
  let p = Core.Universe.ps u in
  create ~qs:(Core.Universe.qs u) ~pa:p ~pb:p

let size t = Array.length t.qs

let channel_a t = Core.Universe.of_arrays ~p:t.pa ~q:t.qs
let channel_b t = Core.Universe.of_arrays ~p:t.pb ~q:t.qs

let mu_a t = Kahan.sum_over (size t) (fun i -> t.pa.(i) *. t.qs.(i))
let mu_b t = Kahan.sum_over (size t) (fun i -> t.pb.(i) *. t.qs.(i))

let mu_pair t =
  Kahan.sum_over (size t) (fun i -> t.pa.(i) *. t.pb.(i) *. t.qs.(i))

let var_pair t =
  Kahan.sum_over (size t) (fun i ->
      let pc = t.pa.(i) *. t.pb.(i) in
      pc *. (1.0 -. pc) *. t.qs.(i) *. t.qs.(i))

let sigma_pair t = sqrt (var_pair t)

let p_no_common_fault t =
  exp
    (Kahan.sum_over (size t) (fun i ->
         Special.log1p (-.(t.pa.(i) *. t.pb.(i)))))

let risk_ratio_vs_a t =
  (* P(pair shares a fault) / P(channel-A version has a fault). *)
  let denom = Core.Fault_count.prob_some t.pa in
  if Stats.is_zero denom then nan
  else
    Core.Fault_count.prob_some (Array.init (size t) (fun i -> t.pa.(i) *. t.pb.(i)))
    /. denom

let divergence_gain t =
  (* Gain of the forced pair over the non-forced pair built from channel A
     alone: ratio of mean pair PFDs. Values > 1 mean forcing helped. *)
  let non_forced = Core.Moments.mu2 (channel_a t) in
  let forced = mu_pair t in
  if Stats.is_zero forced then infinity else non_forced /. forced

let complementary rng u ~strength =
  (* Channel B's process is derived from A's by redistributing weakness:
     with the given strength in [0, 1], each fault's pb is a convex mix of
     pa and a random permutation of pa — at strength 1 the two processes
     have the same distribution of fault probabilities but assign them to
     different faults, the idealised forced diversity. *)
  if strength < 0.0 || strength > 1.0 then
    invalid_arg "Forced.complementary: strength outside [0, 1]";
  let pa = Core.Universe.ps u in
  let permuted = Array.copy pa in
  Rng.shuffle_in_place rng permuted;
  let pb =
    Array.init (Array.length pa) (fun i ->
        ((1.0 -. strength) *. pa.(i)) +. (strength *. permuted.(i)))
  in
  create ~qs:(Core.Universe.qs u) ~pa ~pb
