(** A fleet of plants, each protected by an independently developed system
    from the same process.

    This makes the paper's distributional results *observable*: because
    the PFD varies across developed systems (variance sigma^2, eqs. 2),
    the failure counts across a fleet are over-dispersed relative to a
    common-PFD binomial, and the method of moments recovers E(Theta) and
    Var(Theta) from field data alone — the bridge between the model's
    unobservable parameters and the data an assessor could actually
    collect (experiment E26). *)

type t
(** Observed fleet: per-plant true PFD (for oracle checks), demand count
    and failure count. *)

type plant_record = {
  system_pfd : float;
  demands : int;
  failures : int;
}

val deploy_pairs :
  ?pool:Exec.Pool.t ->
  ?shards:int ->
  Numerics.Rng.t ->
  Demandspace.Space.t ->
  plants:int ->
  Protection.t array
(** Each plant gets a fresh, independently developed 1-out-of-2 system.

    Sharded over [Exec.map_shards]: with [shards >= 2] (the default
    shard count is [Exec.default_shards ()]), shard [k] develops a
    contiguous slice of the plants on its own [Rng.split] substream and
    the slices concatenate in plant order, so the fleet is a pure
    function of [(seed, shards)] — byte-identical for any pool size.
    [~shards:1] is the legacy sequential path: the parent RNG is
    threaded through the plants directly, byte-identical to the
    pre-sharding implementation. *)

val deploy_singles :
  ?pool:Exec.Pool.t ->
  ?shards:int ->
  Numerics.Rng.t ->
  Demandspace.Space.t ->
  plants:int ->
  Protection.t array
(** Single-version plants (the comparison fleet). Same sharding
    contract as {!deploy_pairs}. *)

val deploy_adjudicated :
  ?pool:Exec.Pool.t ->
  ?shards:int ->
  ?detection:float ->
  ?adjudicator:Adjudicator.t ->
  Numerics.Rng.t ->
  Demandspace.Space.t ->
  plants:int ->
  channels:int ->
  Protection.t array
(** Each plant gets [channels] independently developed (optionally
    self-checking, see {!Devteam.develop_channel}) channels behind an
    arbitrary adjudicator term — e.g. a cascaded vote with a fallback
    for graceful degradation under abstention. Default adjudicator is
    the paper's OR; default [detection] is 0 (plain binary channels).
    Same sharding contract as {!deploy_pairs}. Raises
    [Invalid_argument] when [channels < 1] or the adjudicator needs
    more channels than [channels]. *)

val observe :
  ?pool:Exec.Pool.t ->
  ?shards:int ->
  Numerics.Rng.t ->
  Protection.t array ->
  demands_per_plant:int ->
  t
(** Run every plant through its own operational campaign. Same sharding
    contract as {!deploy_pairs}: shard [k] runs its plant slice on its
    own substream (each plant's demands drawn in blocks — see
    {!Runner.run}) and records merge in plant order; telemetry is
    replayed at join in plant order on the calling domain, so metrics
    and the run log are independent of the domain count. *)

val size : t -> int
val records : t -> plant_record array
val total_failures : t -> int

val pooled_rate : t -> float
(** Fleet-wide failures per demand. *)

type dispersion = {
  mean_count : float;
  count_variance : float;
  binomial_variance : float;
  overdispersion : float;
}

val dispersion : t -> dispersion
(** Over-dispersion of per-plant failure counts; ~1 when every plant has
    the same PFD, > 1 when the PFD varies across developments (the
    observable footprint of sigma > 0). *)

val estimate_pfd_moments : t -> float * float
(** Method-of-moments estimates (mean, variance) of the PFD distribution
    across developments, from counts alone (variance clamped at 0). *)

val true_pfd_summary : t -> Numerics.Stats.summary
(** Oracle: summary of the plants' true PFDs (available in simulation
    only). *)
