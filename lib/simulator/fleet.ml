open Numerics

(* Telemetry (all no-ops until enabled; see lib/obs): per-member
   distributions across the fleet — the true PFD behind each deployed
   system and the failure count each plant observed. *)
let m_plants = Obs.Metrics.counter "fleet.plants_observed"
let h_plant_pfd = Obs.Metrics.histogram "fleet.plant_true_pfd"

let h_plant_failures =
  (* Failure counts, not PFDs: buckets 1 .. 1e6 (0 lands in underflow). *)
  Obs.Metrics.histogram ~lo:1.0 ~decades:6 ~per_decade:4 "fleet.plant_failures"

type plant_record = {
  system_pfd : float;
  demands : int;
  failures : int;
}

type t = { records : plant_record array }

(* Sharding convention (see Exec): [shards = 1] is the legacy sequential
   path — the parent RNG is threaded through the plants in plant order,
   byte-identical to the pre-sharding implementation. [shards >= 2]
   splits one substream per shard; shard k handles a contiguous slice of
   the plants (Exec.shard_bounds) in plant order on its own substream,
   and slices concatenate back in plant order, so the result is a pure
   function of (seed, shards) and byte-identical for any domain count. *)

let resolve_shards ~what = function
  | Some s ->
      if s < 1 then invalid_arg ("Fleet." ^ what ^ ": shards must be >= 1");
      s
  | None -> Exec.default_shards ()

let deploy ?pool ?shards ~what rng ~plants make =
  if plants <= 0 then
    invalid_arg ("Fleet." ^ what ^ ": plants must be positive");
  let shards = resolve_shards ~what shards in
  if shards = 1 then Array.init plants (fun _ -> make rng)
  else
    let child_rngs = Exec.split_rngs rng ~shards in
    let bounds = Exec.shard_bounds ~range:plants ~shards in
    let parts =
      Exec.map_shards ?pool ~shards
        ~f:(fun k ->
          let _, len = bounds.(k) in
          let rng_k = child_rngs.(k) in
          Array.init len (fun _ -> make rng_k))
        ()
    in
    Array.concat (Array.to_list parts)

let deploy_pairs ?pool ?shards rng space ~plants =
  deploy ?pool ?shards ~what:"deploy_pairs" rng ~plants (fun rng ->
      let va, vb = Devteam.develop_pair rng space in
      Protection.one_out_of_two
        (Channel.create ~name:"A" va)
        (Channel.create ~name:"B" vb))

let deploy_singles ?pool ?shards rng space ~plants =
  deploy ?pool ?shards ~what:"deploy_singles" rng ~plants (fun rng ->
      Protection.create
        [ Channel.create ~name:"single" (Devteam.develop rng space) ])

let deploy_adjudicated ?pool ?shards ?detection ?(adjudicator = Adjudicator.one_out_of_n)
    rng space ~plants ~channels =
  if channels < 1 then
    invalid_arg "Fleet.deploy_adjudicated: channels must be >= 1";
  if Adjudicator.min_channels adjudicator > channels then
    invalid_arg "Fleet.deploy_adjudicated: more votes required than channels";
  deploy ?pool ?shards ~what:"deploy_adjudicated" rng ~plants (fun rng ->
      Protection.create ~adjudicator
        (Array.to_list (Devteam.develop_channels ?detection rng space ~count:channels)))

let observe ?pool ?shards rng systems ~demands_per_plant =
  if demands_per_plant <= 0 then
    invalid_arg "Fleet.observe: demands_per_plant must be positive";
  let shards = resolve_shards ~what:"observe" shards in
  let span = Obs.Trace.enter "fleet.observe" in
  let run_plant rng system =
    let stats = Runner.run rng ~system ~demand_count:demands_per_plant in
    {
      system_pfd = Protection.true_pfd system;
      demands = demands_per_plant;
      failures = stats.Runner.system_failures;
    }
  in
  let records =
    if shards = 1 then Array.map (fun system -> run_plant rng system) systems
    else
      let plants = Array.length systems in
      let child_rngs = Exec.split_rngs rng ~shards in
      let bounds = Exec.shard_bounds ~range:plants ~shards in
      let parts =
        Exec.map_shards ?pool ~shards
          ~f:(fun k ->
            let lo, len = bounds.(k) in
            let rng_k = child_rngs.(k) in
            Array.init len (fun i -> run_plant rng_k systems.(lo + i)))
          ()
      in
      Array.concat (Array.to_list parts)
  in
  (* Join: replay the per-plant records into the instruments in plant
     order, so metrics and the run log are independent of the domain
     count (single-writer, calling domain only). *)
  Array.iter
    (fun record ->
      Obs.Metrics.incr m_plants;
      Obs.Metrics.observe h_plant_pfd record.system_pfd;
      Obs.Metrics.observe h_plant_failures (float_of_int record.failures))
    records;
  if Obs.Runlog.active () then begin
    Obs.Runlog.record_all ~kind:"fleet.plant"
      (List.mapi
         (fun plant record ->
           [
             ("plant", Obs.Json.Int plant);
             ("demands", Obs.Json.Int record.demands);
             ("failures", Obs.Json.Int record.failures);
             ("true_pfd", Obs.Json.Float record.system_pfd);
           ])
         (Array.to_list records));
    (* Observation summary, recorded after the per-plant events: the
       declared fleet size lets an offline assessor (lib/evidence)
       reconcile the plant events it actually saw against what the
       simulator claims to have observed. *)
    Obs.Runlog.record ~kind:"fleet.observe"
      [
        ("plants", Obs.Json.Int (Array.length records));
        ("demands_per_plant", Obs.Json.Int demands_per_plant);
        ("failures", Obs.Json.Int
           (Array.fold_left (fun acc r -> acc + r.failures) 0 records));
        ("shards", Obs.Json.Int shards);
      ]
  end;
  Obs.Trace.leave span;
  { records }

let size t = Array.length t.records
let records t = Array.copy t.records

let total_failures t =
  Array.fold_left (fun acc r -> acc + r.failures) 0 t.records

let pooled_rate t =
  let demands = Array.fold_left (fun acc r -> acc + r.demands) 0 t.records in
  float_of_int (total_failures t) /. float_of_int demands

type dispersion = {
  mean_count : float;
  count_variance : float;
  binomial_variance : float;
      (** what the variance would be if every plant had the pooled PFD *)
  overdispersion : float;  (** count_variance / binomial_variance *)
}

let dispersion t =
  let counts = Array.map (fun r -> float_of_int r.failures) t.records in
  if Array.length counts < 2 then
    invalid_arg "Fleet.dispersion: need at least two plants";
  let mean_count = Stats.mean counts in
  let count_variance = Stats.variance counts in
  let demands = float_of_int t.records.(0).demands in
  let p = pooled_rate t in
  let binomial_variance = demands *. p *. (1.0 -. p) in
  {
    mean_count;
    count_variance;
    binomial_variance;
    overdispersion =
      (if binomial_variance > 0.0 then count_variance /. binomial_variance
       else nan);
  }

let estimate_pfd_moments t =
  (* Method of moments: with K_j ~ Bin(T, theta_j) given plant j's true
     PFD theta_j,
       E[K]   = T mu,
       Var[K] = T mu - T E[theta^2] + T^2 Var(theta)
     (exactly, since Var[K] = E[T theta (1-theta)] + T^2 Var(theta)), so
       Var(theta) = (S2 - T mu_hat + T E[theta^2]) / T^2
     which we solve with E[theta^2] = Var(theta) + mu^2. *)
  let counts = Array.map (fun r -> float_of_int r.failures) t.records in
  if Array.length counts < 2 then
    invalid_arg "Fleet.estimate_pfd_moments: need at least two plants";
  let demands = float_of_int t.records.(0).demands in
  let mu_hat = Stats.mean counts /. demands in
  let s2 = Stats.variance counts in
  (* (T^2 - T) Var = S2 - T mu + T mu^2  =>  Var = (S2 - T mu (1 - mu)) / (T^2 - T) *)
  let var_hat =
    (s2 -. (demands *. mu_hat *. (1.0 -. mu_hat)))
    /. ((demands *. demands) -. demands)
  in
  (mu_hat, max 0.0 var_hat)

let true_pfd_summary t =
  Stats.summarize (Array.map (fun r -> r.system_pfd) t.records)
