(** Operational testing of a protection system: feed it a stream of demands
    from the plant and record failures.

    This closes the loop the paper cannot close analytically: the empirical
    failure frequency of the executed system converges to the model PFD
    (the sum over common faults of q_i) — tested in the integration suite. *)

type stats = {
  demands : int;
  system_failures : int;
      (** demands the adjudicated system left unhandled (for the
          paper's OR adjudication: demands on which every channel
          failed); includes the unresolved abstentions below *)
  system_abstentions : int;
      (** system failures on which the adjudicator's verdict was
          [Abstain] (quorum lost to self-checking channels) rather than
          a silent [No_action]; always 0 without self-checking
          channels *)
  channel_failures : int array;  (** per-channel failure counts *)
  coincident_failures : int;
      (** demands on which at least two channels failed *)
  estimated_pfd : float;
  pfd_ci : float * float;  (** Wilson 95% interval *)
}

val run :
  ?log:bool -> Numerics.Rng.t -> system:Protection.t -> demand_count:int -> stats
(** Run the system on [demand_count] demands drawn from the space's
    operational profile. [log] emits a debug line per system failure. *)

val channel_pfd_estimates : stats -> float array
(** Empirical per-channel PFDs. *)

val pp_stats : Format.formatter -> stats -> unit
