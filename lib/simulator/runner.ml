open Numerics

type stats = {
  demands : int;
  system_failures : int;
  channel_failures : int array;
  coincident_failures : int;
  estimated_pfd : float;
  pfd_ci : float * float;
}

let run ?(log = false) rng ~system ~demand_count =
  if demand_count <= 0 then invalid_arg "Runner.run: demand_count must be positive";
  let channels = Protection.channels system in
  let n_channels = List.length channels in
  let channel_failures = Array.make n_channels 0 in
  let system_failures = ref 0 in
  let coincident = ref 0 in
  let space = Protection.space system in
  let plant = Plant.create ~profile:(Demandspace.Space.profile space) rng in
  for step = 1 to demand_count do
    let demand = Plant.next_demand plant in
    let outputs = List.map (fun c -> Channel.respond c demand) channels in
    let failed =
      List.mapi
        (fun i o ->
          if o = Channel.No_action then begin
            channel_failures.(i) <- channel_failures.(i) + 1;
            true
          end
          else false)
        outputs
    in
    let n_failed = List.length (List.filter Fun.id failed) in
    if n_failed >= 2 then incr coincident;
    if Adjudicator.system_fails (Protection.adjudicator system) outputs then begin
      incr system_failures;
      if log then
        Logs.debug (fun m ->
            m "step %d: system failure on %a" step Demandspace.Demand.pp demand)
    end
  done;
  let estimated_pfd =
    float_of_int !system_failures /. float_of_int demand_count
  in
  {
    demands = demand_count;
    system_failures = !system_failures;
    channel_failures;
    coincident_failures = !coincident;
    estimated_pfd;
    pfd_ci =
      Stats.proportion_ci ~successes:!system_failures ~trials:demand_count ();
  }

let channel_pfd_estimates stats =
  Array.map
    (fun f -> float_of_int f /. float_of_int stats.demands)
    stats.channel_failures

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>demands: %d@,system failures: %d (pfd ~ %.3g, 95%% CI [%.3g, %.3g])@,\
     channel failures: %a@,coincident failures: %d@]"
    s.demands s.system_failures s.estimated_pfd (fst s.pfd_ci) (snd s.pfd_ci)
    Fmt.(array ~sep:sp int)
    s.channel_failures s.coincident_failures
