open Numerics

(* Telemetry (all no-ops until enabled; see lib/obs): demand/failure
   counters across every run in the process, the latest empirical PFD,
   and a log-bucketed histogram of per-run PFD estimates. *)
let m_demands = Obs.Metrics.counter "runner.demands"
let m_system_failures = Obs.Metrics.counter "runner.system_failures"
let m_channel_failures = Obs.Metrics.counter "runner.channel_failures"
let m_coincident = Obs.Metrics.counter "runner.coincident_failures"
let m_runs = Obs.Metrics.counter "runner.runs"
let g_estimated_pfd = Obs.Metrics.gauge "runner.last_estimated_pfd"
let h_estimated_pfd = Obs.Metrics.histogram "runner.estimated_pfd"

type stats = {
  demands : int;
  system_failures : int;
  channel_failures : int array;
  coincident_failures : int;
  estimated_pfd : float;
  pfd_ci : float * float;
}

let run ?(log = false) rng ~system ~demand_count =
  if demand_count <= 0 then invalid_arg "Runner.run: demand_count must be positive";
  let span = Obs.Trace.enter "runner.run" in
  let channels = Protection.channels system in
  let n_channels = List.length channels in
  let channel_failures = Array.make n_channels 0 in
  let system_failures = ref 0 in
  let coincident = ref 0 in
  let space = Protection.space system in
  let plant = Plant.create ~profile:(Demandspace.Space.profile space) rng in
  for step = 1 to demand_count do
    let demand = Plant.next_demand plant in
    let outputs = List.map (fun c -> Channel.respond c demand) channels in
    let failed =
      List.mapi
        (fun i o ->
          if o = Channel.No_action then begin
            channel_failures.(i) <- channel_failures.(i) + 1;
            true
          end
          else false)
        outputs
    in
    let n_failed = List.length (List.filter Fun.id failed) in
    if n_failed >= 2 then incr coincident;
    if Adjudicator.system_fails (Protection.adjudicator system) outputs then begin
      incr system_failures;
      if log then
        Logs.debug (fun m ->
            m "step %d: system failure on %a" step Demandspace.Demand.pp demand)
    end
  done;
  let estimated_pfd =
    float_of_int !system_failures /. float_of_int demand_count
  in
  Obs.Metrics.incr m_runs;
  Obs.Metrics.add m_demands demand_count;
  Obs.Metrics.add m_system_failures !system_failures;
  Obs.Metrics.add m_channel_failures (Array.fold_left ( + ) 0 channel_failures);
  Obs.Metrics.add m_coincident !coincident;
  Obs.Metrics.set g_estimated_pfd estimated_pfd;
  Obs.Metrics.observe h_estimated_pfd estimated_pfd;
  if Obs.Runlog.active () then
    Obs.Runlog.record ~kind:"runner.run"
      [
        ("demands", Obs.Json.Int demand_count);
        ("system_failures", Obs.Json.Int !system_failures);
        ("coincident_failures", Obs.Json.Int !coincident);
        ("estimated_pfd", Obs.Json.Float estimated_pfd);
        ("rng_draws", Obs.Json.Int (Rng.draws rng));
      ];
  Obs.Trace.leave span;
  {
    demands = demand_count;
    system_failures = !system_failures;
    channel_failures;
    coincident_failures = !coincident;
    estimated_pfd;
    pfd_ci =
      Stats.proportion_ci ~successes:!system_failures ~trials:demand_count ();
  }

let channel_pfd_estimates stats =
  Array.map
    (fun f -> float_of_int f /. float_of_int stats.demands)
    stats.channel_failures

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>demands: %d@,system failures: %d (pfd ~ %.3g, 95%% CI [%.3g, %.3g])@,\
     channel failures: %a@,coincident failures: %d@]"
    s.demands s.system_failures s.estimated_pfd (fst s.pfd_ci) (snd s.pfd_ci)
    Fmt.(array ~sep:sp int)
    s.channel_failures s.coincident_failures
