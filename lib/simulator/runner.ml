open Numerics

(* Telemetry (all no-ops until enabled; see lib/obs): demand/failure
   counters across every run in the process, the latest empirical PFD,
   and a log-bucketed histogram of per-run PFD estimates. *)
let m_demands = Obs.Metrics.counter "runner.demands"
let m_system_failures = Obs.Metrics.counter "runner.system_failures"
let m_channel_failures = Obs.Metrics.counter "runner.channel_failures"
let m_coincident = Obs.Metrics.counter "runner.coincident_failures"
let m_runs = Obs.Metrics.counter "runner.runs"
let g_estimated_pfd = Obs.Metrics.gauge "runner.last_estimated_pfd"
let h_estimated_pfd = Obs.Metrics.histogram "runner.estimated_pfd"

type stats = {
  demands : int;
  system_failures : int;
  system_abstentions : int;
  channel_failures : int array;
  coincident_failures : int;
  estimated_pfd : float;
  pfd_ci : float * float;
}

(* Demand ids are drawn in blocks of this size: the profile draws stay in
   exactly the order the one-demand-at-a-time loop used (so the RNG
   stream is byte-identical — pinned by test), but the sampler's table
   lookups run in a tight batch and the evaluation loop touches only
   pre-hoisted arrays. *)
let sample_block = 1024

let run ?(log = false) rng ~system ~demand_count =
  if demand_count <= 0 then invalid_arg "Runner.run: demand_count must be positive";
  let span = Obs.Trace.enter "runner.run" in
  let draws0 = Rng.draws rng in
  let channels = Protection.channels system in
  let n_channels = List.length channels in
  let channel_failures = Array.make n_channels 0 in
  (* Hoisted evaluation state: a channel fails on a demand exactly when
     the demand lies in its version's failure set, and the adjudicator
     commands shutdown when at least [required] channels do — so the
     per-demand work reduces to [n_channels] bitset lookups and two
     integer comparisons, with no per-demand allocation. *)
  let failure_sets =
    Array.of_list
      (List.map
         (fun c -> Demandspace.Version.failure_set (Channel.version c))
         channels)
  in
  let abstain_sets = Array.of_list (List.map Channel.abstain_set channels) in
  let any_self_check =
    List.exists (fun c -> Channel.self_check c <> None) channels
  in
  (* Adjudication is permutation-invariant (counts-level semantics), so
     the verdict on a demand is a pure function of (failed, abstaining)
     channel counts — tabulated once here, making the per-demand cost of
     an arbitrary combinator term one array lookup. Row f covers
     abstention counts 0..f; the unreachable upper triangle is padding. *)
  let adjudicator = Protection.adjudicator system in
  let decision_table =
    Array.init (n_channels + 1) (fun f ->
        Array.init (n_channels + 1) (fun ab ->
            if ab > f then Channel.No_action
            else
              Adjudicator.decide_counts adjudicator
                ~shutdowns:(n_channels - f) ~no_actions:(f - ab) ~abstains:ab))
  in
  let system_failures = ref 0 in
  let system_abstentions = ref 0 in
  let coincident = ref 0 in
  let space = Protection.space system in
  let plant = Plant.create ~profile:(Demandspace.Space.profile space) rng in
  (* Per-demand-id counts for the run-log event's [demand_hist] field —
     the raw material of proven-in-use profile-drift detection
     (lib/evidence). Only accumulated while a run log is installed: the
     disabled path allocates nothing and pays one branch per demand. *)
  let log_hist = Obs.Runlog.active () in
  let hist =
    if log_hist then Array.make (Demandspace.Space.size space) 0
    else [||]
  in
  let block = Array.make (min sample_block demand_count) 0 in
  let step = ref 0 in
  while !step < demand_count do
    let n = min (Array.length block) (demand_count - !step) in
    Plant.sample_demands_into plant block ~n;
    for i = 0 to n - 1 do
      let id = Array.unsafe_get block i in
      if log_hist then hist.(id) <- hist.(id) + 1;
      let n_failed = ref 0 in
      let n_abstained = ref 0 in
      for c = 0 to n_channels - 1 do
        if Bitset.mem (Array.unsafe_get failure_sets c) id then begin
          channel_failures.(c) <- channel_failures.(c) + 1;
          incr n_failed;
          if
            any_self_check
            && Bitset.mem (Array.unsafe_get abstain_sets c) id
          then incr n_abstained
        end
      done;
      if !n_failed >= 2 then incr coincident;
      match decision_table.(!n_failed).(!n_abstained) with
      | Channel.Shutdown -> ()
      | (Channel.No_action | Channel.Abstain) as verdict ->
          if Channel.equal verdict Channel.Abstain then
            incr system_abstentions;
          incr system_failures;
          if log then
            Logs.debug (fun m ->
                m "step %d: system failure on %a" (!step + i + 1)
                  Demandspace.Demand.pp
                  (Demandspace.Demand.of_int id))
    done;
    step := !step + n
  done;
  let estimated_pfd =
    float_of_int !system_failures /. float_of_int demand_count
  in
  Obs.Metrics.incr m_runs;
  Obs.Metrics.add m_demands demand_count;
  Obs.Metrics.add m_system_failures !system_failures;
  Obs.Metrics.add m_channel_failures (Array.fold_left ( + ) 0 channel_failures);
  Obs.Metrics.add m_coincident !coincident;
  Obs.Metrics.set g_estimated_pfd estimated_pfd;
  Obs.Metrics.observe h_estimated_pfd estimated_pfd;
  if Obs.Runlog.active () then begin
    (* Sparse empirical demand histogram, ascending id: the pairs
       [[id, count], ...] for every demand id this run actually hit.
       lib/evidence compares the accumulated histogram against the
       declared operational profile (chi-square / KL drift). *)
    let demand_hist =
      let pairs = ref [] in
      for id = Array.length hist - 1 downto 0 do
        if hist.(id) > 0 then
          pairs :=
            Obs.Json.List [ Obs.Json.Int id; Obs.Json.Int hist.(id) ]
            :: !pairs
      done;
      Obs.Json.List !pairs
    in
    Obs.Runlog.record ~kind:"runner.run"
      [
        ("demands", Obs.Json.Int demand_count);
        ("system_failures", Obs.Json.Int !system_failures);
        ("coincident_failures", Obs.Json.Int !coincident);
        ("estimated_pfd", Obs.Json.Float estimated_pfd);
        (* Draws made by THIS run — the delta across the call, not the
           generator's lifetime total (shared generators run many runs). *)
        ("rng_draws", Obs.Json.Int (Rng.draws rng - draws0));
        ("demand_hist", demand_hist);
      ]
  end;
  Obs.Trace.leave span;
  {
    demands = demand_count;
    system_failures = !system_failures;
    system_abstentions = !system_abstentions;
    channel_failures;
    coincident_failures = !coincident;
    estimated_pfd;
    pfd_ci =
      Stats.proportion_ci ~successes:!system_failures ~trials:demand_count ();
  }

let channel_pfd_estimates stats =
  Array.map
    (fun f -> float_of_int f /. float_of_int stats.demands)
    stats.channel_failures

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>demands: %d@,system failures: %d (pfd ~ %.3g, 95%% CI [%.3g, %.3g])@,\
     channel failures: %a@,coincident failures: %d@]"
    s.demands s.system_failures s.estimated_pfd (fst s.pfd_ci) (snd s.pfd_ci)
    Fmt.(array ~sep:sp int)
    s.channel_failures s.coincident_failures;
  (* Abstention-free runs (every legacy configuration) print exactly as
     before; the extra line appears only when an adjudicator actually
     left demands unresolved. *)
  if s.system_abstentions > 0 then
    Fmt.pf ppf "@ (unresolved abstentions: %d)" s.system_abstentions
