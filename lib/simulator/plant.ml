open Numerics

type event = Demand of Demandspace.Demand.t | Idle

type t = {
  profile : Demandspace.Profile.t;
  demand_rate : float;
  rng : Rng.t;
}

let create ?(demand_rate = 1.0) ~profile rng =
  if demand_rate <= 0.0 || demand_rate > 1.0 then
    invalid_arg "Plant.create: demand_rate must lie in (0, 1]";
  { profile; demand_rate; rng }

let step t =
  if Rng.bool t.rng ~p:t.demand_rate then
    Demand (Demandspace.Profile.sample t.profile t.rng)
  else Idle

let next_demand t = Demandspace.Profile.sample t.profile t.rng

(* Batched ids for the simulation hot path. Only valid for a pure demand
   sequence (demand_rate = 1.0): with idle periods the idle draws
   interleave with the profile draws, so a batch would consume the RNG
   differently from repeated [next_demand]. *)
let sample_demands_into t buf ~n =
  if t.demand_rate < 1.0 then
    invalid_arg "Plant.sample_demands_into: plant has idle periods";
  Demandspace.Profile.sample_many t.profile t.rng buf ~n

let demands t ~count = Array.init count (fun _ -> next_demand t)

let demand_rate t = t.demand_rate
