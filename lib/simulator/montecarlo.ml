open Numerics

(* Telemetry (all no-ops until enabled; see lib/obs): iteration and
   acceptance counters, RNG consumption, and PFD-scale histograms of the
   sampled single-version and pair PFDs. *)
let m_iterations = Obs.Metrics.counter "montecarlo.iterations"
let m_n1_pos = Obs.Metrics.counter "montecarlo.theta1_positive"
let m_n2_pos = Obs.Metrics.counter "montecarlo.theta2_positive"
let m_rng_draws = Obs.Metrics.counter "montecarlo.rng_draws"
let h_theta1 = Obs.Metrics.histogram "montecarlo.theta1"
let h_theta2 = Obs.Metrics.histogram "montecarlo.theta2"

type estimate = {
  replications : int;
  theta1 : Stats.summary;
  theta2 : Stats.summary;
  p_n1_pos : float;
  p_n2_pos : float;
  risk_ratio : float;
  theta1_samples : float array;
  theta2_samples : float array;
}

let estimate rng universe ~replications =
  if replications <= 0 then
    invalid_arg "Montecarlo.estimate: replications must be positive";
  let span = Obs.Trace.enter "montecarlo.estimate" in
  let draws0 = Rng.draws rng in
  let theta1_samples = Array.make replications 0.0 in
  let theta2_samples = Array.make replications 0.0 in
  let n1_pos = ref 0 and n2_pos = ref 0 in
  for r = 0 to replications - 1 do
    let pfd_a, _pfd_b, pfd_pair = Devteam.pair_pfd_from_universe rng universe in
    theta1_samples.(r) <- pfd_a;
    theta2_samples.(r) <- pfd_pair;
    if pfd_a > 0.0 then incr n1_pos;
    if pfd_pair > 0.0 then incr n2_pos;
    Obs.Metrics.incr m_iterations;
    Obs.Metrics.observe h_theta1 pfd_a;
    Obs.Metrics.observe h_theta2 pfd_pair
  done;
  let p_n1_pos = float_of_int !n1_pos /. float_of_int replications in
  let p_n2_pos = float_of_int !n2_pos /. float_of_int replications in
  Obs.Metrics.add m_n1_pos !n1_pos;
  Obs.Metrics.add m_n2_pos !n2_pos;
  Obs.Metrics.add m_rng_draws (Rng.draws rng - draws0);
  if Obs.Runlog.active () then
    Obs.Runlog.record ~kind:"montecarlo.estimate"
      [
        ("replications", Obs.Json.Int replications);
        ("p_n1_pos", Obs.Json.Float p_n1_pos);
        ("p_n2_pos", Obs.Json.Float p_n2_pos);
        ("rng_draws", Obs.Json.Int (Rng.draws rng - draws0));
      ];
  Obs.Trace.leave span;
  {
    replications;
    theta1 = Stats.summarize theta1_samples;
    theta2 = Stats.summarize theta2_samples;
    p_n1_pos;
    p_n2_pos;
    risk_ratio = (if p_n1_pos > 0.0 then p_n2_pos /. p_n1_pos else nan);
    theta1_samples;
    theta2_samples;
  }

let quantile_theta2 est alpha = Stats.quantile est.theta2_samples alpha
let quantile_theta1 est alpha = Stats.quantile est.theta1_samples alpha

type population = {
  version_pfds : float array;
  pair_pfds : float array;
  version_summary : Stats.summary;
  pair_summary : Stats.summary;
}

let version_population rng space ~count =
  if count < 2 then
    invalid_arg "Montecarlo.version_population: need at least two versions";
  let span = Obs.Trace.enter "montecarlo.version_population" in
  let versions = Devteam.develop_many rng space ~count in
  let version_pfds = Array.map Demandspace.Version.pfd versions in
  let pairs = ref [] in
  for i = 0 to count - 1 do
    for j = i + 1 to count - 1 do
      pairs := Demandspace.Version.pair_pfd versions.(i) versions.(j) :: !pairs
    done
  done;
  let pair_pfds = Array.of_list !pairs in
  let pop =
    {
      version_pfds;
      pair_pfds;
      version_summary = Stats.summarize version_pfds;
      pair_summary = Stats.summarize pair_pfds;
    }
  in
  Obs.Trace.leave span;
  pop

let knight_leveson_shape pop =
  (* The paper's Section 7 check: "diversity reduced not only the sample
     mean of the PFD of the 27 program versions produced, but also -
     greatly - its standard deviation". Returns (mean ratio, std ratio):
     both below 1 reproduce the observation, and std ratio << mean ratio
     reproduces "greatly". *)
  let mean_ratio =
    if pop.version_summary.mean > 0.0 then
      pop.pair_summary.mean /. pop.version_summary.mean
    else nan
  in
  let std_ratio =
    if pop.version_summary.std > 0.0 then
      pop.pair_summary.std /. pop.version_summary.std
    else nan
  in
  (mean_ratio, std_ratio)

let empirical_system_pfd rng space ~replications ~demands_per_system =
  (* Full-stack estimate: develop a pair, build the Fig. 1 system, run it
     on operational demands, and average the observed failure rates. *)
  let span = Obs.Trace.enter "montecarlo.empirical_system_pfd" in
  let acc = Welford.create () in
  for _ = 1 to replications do
    let va, vb = Devteam.develop_pair rng space in
    let system =
      Protection.one_out_of_two
        (Channel.create ~name:"A" va)
        (Channel.create ~name:"B" vb)
    in
    let stats = Runner.run rng ~system ~demand_count:demands_per_system in
    Welford.add acc stats.Runner.estimated_pfd
  done;
  Obs.Trace.leave span;
  Welford.mean acc
