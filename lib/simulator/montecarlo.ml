open Numerics

(* Telemetry (all no-ops until enabled; see lib/obs): iteration and
   acceptance counters, RNG consumption, and PFD-scale histograms of the
   sampled single-version and pair PFDs. Parallel paths accumulate plain
   ints per shard and feed the instruments once, at join on the calling
   domain, so histogram/gauge writes never race and metric totals are
   independent of the domain count. *)
let m_iterations = Obs.Metrics.counter "montecarlo.iterations"
let m_n1_pos = Obs.Metrics.counter "montecarlo.theta1_positive"
let m_n2_pos = Obs.Metrics.counter "montecarlo.theta2_positive"
let m_rng_draws = Obs.Metrics.counter "montecarlo.rng_draws"
let h_theta1 = Obs.Metrics.histogram "montecarlo.theta1"
let h_theta2 = Obs.Metrics.histogram "montecarlo.theta2"

type estimate = {
  replications : int;
  shards : int;
  theta1 : Stats.summary;
  theta2 : Stats.summary;
  p_n1_pos : float;
  p_n2_pos : float;
  risk_ratio : float;
  theta1_samples : float array;
  theta2_samples : float array;
  shard_draws : int array;
}

let estimate ?pool ?shards rng universe ~replications =
  if replications <= 0 then
    invalid_arg "Montecarlo.estimate: replications must be positive";
  let shards =
    match shards with Some s -> s | None -> Exec.default_shards ()
  in
  if shards < 1 then invalid_arg "Montecarlo.estimate: shards must be >= 1";
  let span = Obs.Trace.enter "montecarlo.estimate" in
  let draws0 = Rng.draws rng in
  let theta1_samples = Array.make replications 0.0 in
  let theta2_samples = Array.make replications 0.0 in
  (* Deterministic sharding: each shard owns a contiguous slice of the
     sample arrays and an independent substream, so the result depends on
     (seed, shards) only — never on the pool's domain count. *)
  let child_rngs = Exec.split_rngs rng ~shards in
  let bounds = Exec.shard_bounds ~range:replications ~shards in
  let per_shard =
    Exec.map_shards ?pool ~shards
      ~f:(fun k ->
        let lo, len = bounds.(k) in
        let rng_k = child_rngs.(k) in
        let n1 = ref 0 and n2 = ref 0 in
        for r = lo to lo + len - 1 do
          let pfd_a, _pfd_b, pfd_pair =
            Devteam.pair_pfd_from_universe rng_k universe
          in
          theta1_samples.(r) <- pfd_a;
          theta2_samples.(r) <- pfd_pair;
          if pfd_a > 0.0 then incr n1;
          if pfd_pair > 0.0 then incr n2
        done;
        (!n1, !n2, Rng.draws rng_k))
      ()
  in
  (* Join: fold shard tallies in shard order and feed the single-writer
     instruments from the calling domain. *)
  let n1_pos = ref 0 and n2_pos = ref 0 in
  let shard_draws = Array.make shards 0 in
  Array.iteri
    (fun k (n1, n2, draws) ->
      n1_pos := !n1_pos + n1;
      n2_pos := !n2_pos + n2;
      shard_draws.(k) <- draws)
    per_shard;
  let total_draws =
    Rng.draws rng - draws0 + Array.fold_left ( + ) 0 shard_draws
  in
  Obs.Metrics.add m_iterations replications;
  Obs.Metrics.add m_n1_pos !n1_pos;
  Obs.Metrics.add m_n2_pos !n2_pos;
  Obs.Metrics.add m_rng_draws total_draws;
  if Obs.Metrics.is_enabled () then
    for r = 0 to replications - 1 do
      Obs.Metrics.observe h_theta1 theta1_samples.(r);
      Obs.Metrics.observe h_theta2 theta2_samples.(r)
    done;
  let p_n1_pos = float_of_int !n1_pos /. float_of_int replications in
  let p_n2_pos = float_of_int !n2_pos /. float_of_int replications in
  if Obs.Runlog.active () then
    Obs.Runlog.record ~kind:"montecarlo.estimate"
      [
        ("replications", Obs.Json.Int replications);
        ("shards", Obs.Json.Int shards);
        ("p_n1_pos", Obs.Json.Float p_n1_pos);
        ("p_n2_pos", Obs.Json.Float p_n2_pos);
        ("rng_draws", Obs.Json.Int total_draws);
      ];
  Obs.Trace.leave span;
  {
    replications;
    shards;
    theta1 = Stats.summarize theta1_samples;
    theta2 = Stats.summarize theta2_samples;
    p_n1_pos;
    p_n2_pos;
    risk_ratio = (if p_n1_pos > 0.0 then p_n2_pos /. p_n1_pos else nan);
    theta1_samples;
    theta2_samples;
    shard_draws;
  }

let quantile_theta2 est alpha = Stats.quantile est.theta2_samples alpha
let quantile_theta1 est alpha = Stats.quantile est.theta1_samples alpha

type population = {
  version_pfds : float array;
  pair_pfds : float array;
  version_summary : Stats.summary;
  pair_summary : Stats.summary;
}

let version_population ?pool ?shards rng space ~count =
  if count < 2 then
    invalid_arg "Montecarlo.version_population: need at least two versions";
  let shards =
    match shards with Some s -> s | None -> Exec.default_shards ()
  in
  let span = Obs.Trace.enter "montecarlo.version_population" in
  (* Development consumes the RNG and stays sequential; evaluating the
     count*(count-1)/2 unordered pairs is pure, so it shards over a
     flattened (i, j) index table into a preallocated result array. *)
  let versions = Devteam.develop_many rng space ~count in
  let version_pfds = Array.map Demandspace.Version.pfd versions in
  let n_pairs = count * (count - 1) / 2 in
  let pair_i = Array.make n_pairs 0 and pair_j = Array.make n_pairs 0 in
  let idx = ref 0 in
  for i = 0 to count - 1 do
    for j = i + 1 to count - 1 do
      pair_i.(!idx) <- i;
      pair_j.(!idx) <- j;
      incr idx
    done
  done;
  let pair_pfds = Array.make n_pairs 0.0 in
  let bounds = Exec.shard_bounds ~range:n_pairs ~shards in
  ignore
    (Exec.map_shards ?pool ~shards
       ~f:(fun k ->
         let lo, len = bounds.(k) in
         for r = lo to lo + len - 1 do
           pair_pfds.(r) <-
             Demandspace.Version.pair_pfd versions.(pair_i.(r))
               versions.(pair_j.(r))
         done)
       ());
  let pop =
    {
      version_pfds;
      pair_pfds;
      version_summary = Stats.summarize version_pfds;
      pair_summary = Stats.summarize pair_pfds;
    }
  in
  Obs.Trace.leave span;
  pop

let knight_leveson_shape pop =
  (* The paper's Section 7 check: "diversity reduced not only the sample
     mean of the PFD of the 27 program versions produced, but also -
     greatly - its standard deviation". Returns (mean ratio, std ratio):
     both below 1 reproduce the observation, and std ratio << mean ratio
     reproduces "greatly". *)
  let mean_ratio =
    if pop.version_summary.mean > 0.0 then
      pop.pair_summary.mean /. pop.version_summary.mean
    else nan
  in
  let std_ratio =
    if pop.version_summary.std > 0.0 then
      pop.pair_summary.std /. pop.version_summary.std
    else nan
  in
  (mean_ratio, std_ratio)

let empirical_system_pfd ?pool ?shards rng space ~replications
    ~demands_per_system =
  (* Full-stack estimate: develop a pair, build the Fig. 1 system, run it
     on operational demands, and average the observed failure rates. Each
     shard runs its slice of the replications on its own substream into a
     local Welford accumulator; accumulators merge in shard order. *)
  let shards =
    match shards with Some s -> s | None -> Exec.default_shards ()
  in
  let span = Obs.Trace.enter "montecarlo.empirical_system_pfd" in
  let child_rngs = Exec.split_rngs rng ~shards in
  let bounds = Exec.shard_bounds ~range:replications ~shards in
  let acc =
    Exec.map_reduce ?pool ~shards
      ~f:(fun k ->
        let _, len = bounds.(k) in
        let rng_k = child_rngs.(k) in
        let acc = Welford.create () in
        for _ = 1 to len do
          let va, vb = Devteam.develop_pair rng_k space in
          let system =
            Protection.one_out_of_two
              (Channel.create ~name:"A" va)
              (Channel.create ~name:"B" vb)
          in
          let stats = Runner.run rng_k ~system ~demand_count:demands_per_system in
          Welford.add acc stats.Runner.estimated_pfd
        done;
        acc)
      ~merge:Welford.merge ()
  in
  Obs.Trace.leave span;
  Welford.mean acc
