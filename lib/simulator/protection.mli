(** The complete protection system of Fig. 1: N software channels behind an
    adjudicator (the paper studies the 1-out-of-2 OR case; voted
    M-out-of-N architectures are supported as an extension). *)

type t

val create : ?adjudicator:Adjudicator.t -> Channel.t list -> t
(** Raises [Invalid_argument] on an empty channel list or when the
    adjudicator requires more votes than there are channels. The default
    adjudicator is the paper's OR. *)

val one_out_of_two : Channel.t -> Channel.t -> t
(** The paper's dual-channel configuration. *)

val voted : required:int -> Channel.t list -> t
(** M-out-of-N system: at least [required] channels must command
    shutdown. *)

val channels : t -> Channel.t list
val channel_count : t -> int
val adjudicator : t -> Adjudicator.t

val space : t -> Demandspace.Space.t
(** The demand space all channels operate over (taken from the first
    channel; [create] guarantees at least one). *)

val respond : t -> Demandspace.Demand.t -> Channel.output
(** System output on a demand. *)

val fails_on : t -> Demandspace.Demand.t -> bool
(** True when the adjudicated output is not [Shutdown] — a silent
    [No_action] and an unresolved [Abstain] both leave the demand
    unhandled. *)

val true_pfd : t -> float
(** Exact system PFD: sweep of the demand space under the operational
    profile (equals the intersection measure for the OR adjudicator). *)

val pp : Format.formatter -> t -> unit
