(** Long-run operational campaigns: mission survival and time to first
    system failure.

    The paper's PFD is a per-demand quantity; what an operator of the
    Fig. 1 system experiences is a demand *sequence*, where the time to
    the first mishandled demand is geometric with parameter PFD. This
    module simulates that experience and provides the closed forms to
    check it against. *)

type mission_outcome = Failed_at of int | Survived

val time_to_first_failure :
  Numerics.Rng.t -> system:Protection.t -> max_demands:int -> mission_outcome
(** Drive the system with operational demands until the first system
    failure or the mission length is reached. *)

type mttf_estimate = {
  missions : int;
  failures : int;
  censored : int;  (** missions that survived to [max_demands] *)
  mean_time_to_failure : float;
  failure_rate : float;
  shards : int;  (** shard count the estimate was computed with *)
  shard_draws : int array;
      (** RNG draws consumed by each shard's substream (one entry per
          shard, in shard order) — exact per-domain draw accounting,
          independent of the pool size *)
}

val estimate_mttf :
  ?pool:Exec.Pool.t ->
  ?shards:int ->
  Numerics.Rng.t ->
  system:Protection.t ->
  missions:int ->
  max_demands:int ->
  mttf_estimate
(** Replicated missions against a fixed system. Missions shard
    deterministically (default {!Exec.default_shards} shards, each on its
    own [Rng.split] substream); outcomes are replayed in mission order at
    join, so the estimate, metrics and run log depend only on
    (seed, shards), never on the pool size. *)

val theoretical_mttf : pfd:float -> float
(** 1/PFD (demands), infinite for a perfect system. *)

val mission_survival_probability : pfd:float -> mission_demands:int -> float
(** (1-PFD)^T without cancellation for small PFD. *)

val simulate_mission_survival :
  ?pool:Exec.Pool.t ->
  ?shards:int ->
  Numerics.Rng.t ->
  system:Protection.t ->
  mission_demands:int ->
  missions:int ->
  float
(** Empirical counterpart of {!mission_survival_probability}; sharded
    like {!estimate_mttf}. *)

type architecture_report = {
  label : string;
  analytic_pfd : float;  (** exact PFD of the concrete developed system *)
  simulated_mttf : mttf_estimate;
  survival_1000 : float;  (** survival probability over 1000 demands *)
}

val compare_architectures :
  Numerics.Rng.t ->
  Demandspace.Space.t ->
  architectures:(string * int * int) list ->
  missions:int ->
  max_demands:int ->
  architecture_report list
(** For each (label, channels, required-votes) triple: develop the
    channels fresh from the space's process, build the voted system, and
    measure it. *)

val compare_adjudicated :
  ?detection:float ->
  Numerics.Rng.t ->
  Demandspace.Space.t ->
  architectures:(string * int * Adjudicator.t) list ->
  missions:int ->
  max_demands:int ->
  architecture_report list
(** {!compare_architectures} generalised to adjudicator calculus terms:
    for each (label, channels, adjudicator) triple, develop [channels]
    optionally self-checking channels ({!Devteam.develop_channel} with
    [detection]) and measure the adjudicated system — e.g. pitting
    [vote ~required:2] against
    [fallback (vote ~required:2) (vote ~required:1)] under the same
    development process. *)
