open Numerics

(* Telemetry (all no-ops until enabled; see lib/obs): per-demand step
   counters, how many tests crossed each Wald boundary, and the current
   log likelihood ratio for convergence watching. *)
let m_steps = Obs.Metrics.counter "sprt.steps"
let m_step_failures = Obs.Metrics.counter "sprt.step_failures"
let m_accepts = Obs.Metrics.counter "sprt.accepted"
let m_rejects = Obs.Metrics.counter "sprt.rejected"
let g_log_lr = Obs.Metrics.gauge "sprt.last_log_lr"

type decision = Accept | Reject | Continue

type t = {
  theta0 : float;
  theta1 : float;
  log_a : float;
  log_b : float;
  log_lr_failure : float;
  log_lr_success : float;
  mutable log_lr : float;
  mutable demands : int;
  mutable failures : int;
}

let create ~theta0 ~theta1 ~alpha ~beta =
  if not (0.0 < theta0 && theta0 < theta1 && theta1 < 1.0) then
    invalid_arg "Sprt.create: need 0 < theta0 < theta1 < 1";
  if alpha <= 0.0 || alpha >= 1.0 || beta <= 0.0 || beta >= 1.0 then
    invalid_arg "Sprt.create: error rates must lie strictly in (0, 1)";
  {
    theta0;
    theta1;
    (* Wald boundaries: accept H0 (theta <= theta0) when the log
       likelihood ratio falls below log B, reject when it rises above
       log A. *)
    log_a = log ((1.0 -. beta) /. alpha);
    log_b = log (beta /. (1.0 -. alpha));
    log_lr_failure = log (theta1 /. theta0);
    log_lr_success = Special.log1p (-.theta1) -. Special.log1p (-.theta0);
    log_lr = 0.0;
    demands = 0;
    failures = 0;
  }

let state t =
  if t.log_lr >= t.log_a then Reject
  else if t.log_lr <= t.log_b then Accept
  else Continue

let record t ~failed =
  (match state t with
  | Continue ->
      t.demands <- t.demands + 1;
      if failed then begin
        t.failures <- t.failures + 1;
        t.log_lr <- t.log_lr +. t.log_lr_failure;
        Obs.Metrics.incr m_step_failures
      end
      else t.log_lr <- t.log_lr +. t.log_lr_success;
      Obs.Metrics.incr m_steps;
      Obs.Metrics.set g_log_lr t.log_lr;
      (* A test concludes at most once, so these count boundary
         crossings, not post-decision observations. *)
      (match state t with
      | Accept -> Obs.Metrics.incr m_accepts
      | Reject -> Obs.Metrics.incr m_rejects
      | Continue -> ())
  | Accept | Reject -> () (* test already concluded; ignore further data *));
  state t

let demands_observed t = t.demands
let failures_observed t = t.failures
let log_likelihood_ratio t = t.log_lr
let theta0 t = t.theta0
let theta1 t = t.theta1

let run rng ~system ~theta0 ~theta1 ~alpha ~beta ~max_demands =
  if max_demands <= 0 then
    invalid_arg "Sprt.run: max_demands must be positive";
  let span = Obs.Trace.enter "sprt.run" in
  let t = create ~theta0 ~theta1 ~alpha ~beta in
  let space = Protection.space system in
  let plant = Plant.create ~profile:(Demandspace.Space.profile space) rng in
  let rec loop () =
    if t.demands >= max_demands then (Continue, t)
    else
      let failed = Protection.fails_on system (Plant.next_demand plant) in
      match record t ~failed with
      | Continue -> loop ()
      | (Accept | Reject) as d -> (d, t)
  in
  let result = loop () in
  (if Obs.Runlog.active () then
     let decision, _ = result in
     Obs.Runlog.record ~kind:"sprt.decision"
       [
         ( "decision",
           Obs.Json.String
             (match decision with
             | Accept -> "accept"
             | Reject -> "reject"
             | Continue -> "undecided") );
         ("demands", Obs.Json.Int t.demands);
         ("failures", Obs.Json.Int t.failures);
         ("log_lr", Obs.Json.Float t.log_lr);
         (* The hypotheses under test, so an offline assessor can check a
            logged decision against its own aggregated Wald boundary
            (lib/evidence) without out-of-band configuration. *)
         ("theta0", Obs.Json.Float t.theta0);
         ("theta1", Obs.Json.Float t.theta1);
       ]);
  Obs.Trace.leave span;
  result

let expected_sample_size_h0 ~theta0 ~theta1 ~alpha ~beta =
  (* Wald's approximation for E[N | H0]. *)
  let log_a = log ((1.0 -. beta) /. alpha) in
  let log_b = log (beta /. (1.0 -. alpha)) in
  let per_demand =
    (theta0 *. log (theta1 /. theta0))
    +. ((1.0 -. theta0) *. (Special.log1p (-.theta1) -. Special.log1p (-.theta0)))
  in
  ((alpha *. log_a) +. ((1.0 -. alpha) *. log_b)) /. per_demand
