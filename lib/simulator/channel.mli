(** One channel of the protection system of Fig. 1: a software version that
    reads the sensed plant state (the demand) and either commands shutdown
    (correct, since a demand by definition requires intervention), fails to
    act, or — for self-checking channels — abstains when its runtime check
    catches the failure and withholds the wrong output. *)

type output = Shutdown | No_action | Abstain
(** Channel output lattice. The paper's binary channels never produce
    [Abstain]; self-checking channels (Boiten's "Diversity and
    Adjudication") abstain on demands their check covers. *)

type t

val create : ?self_check:Numerics.Bitset.t -> name:string -> Demandspace.Version.t -> t
(** [self_check] is the set of demands on which the channel detects its
    own failure at runtime: on a demand in both the version's failure set
    and [self_check], the channel abstains instead of silently failing.
    Raises [Invalid_argument] when the set is sized to a different demand
    space. Without [self_check] the channel behaves exactly as the seed's
    binary channel. *)

val name : t -> string
val version : t -> Demandspace.Version.t

val self_check : t -> Numerics.Bitset.t option

val respond : t -> Demandspace.Demand.t -> output
(** [Shutdown] off the version's failure set; on it, [Abstain] when the
    self-check covers the demand, [No_action] otherwise. *)

val fails_on : t -> Demandspace.Demand.t -> bool
(** The demand lies in the version's failure set (the output is not
    [Shutdown], whether the failure is silent or self-detected). *)

val abstains_on : t -> Demandspace.Demand.t -> bool

val abstain_set : t -> Numerics.Bitset.t
(** Fresh bitset of demands on which the channel abstains: the failure
    set intersected with the self-check set (empty for channels without
    one). Feeds the runner's Bitset fast path. *)

val pfd : t -> float

val equal_output : output -> output -> bool

val equal : output -> output -> bool
(** Alias of {!equal_output} — the adjudicated vote is the module's
    comparable value. Prefer this over polymorphic [=]. *)

val pp_output : Format.formatter -> output -> unit
val pp : Format.formatter -> t -> unit
