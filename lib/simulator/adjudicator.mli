(** Adjudication of the channels' outputs, as a combinator calculus.

    The paper's configuration is "perfect adjudication (simple OR
    combination of binary outputs)": the plant shuts down if any channel
    commands it. This module generalises that fixed vote to a small
    algebra over the three-valued output lattice of {!Channel}
    ([Shutdown] / [No_action] / [Abstain]), following Boiten's
    "Diversity and Adjudication": [unit] passes votes through, [vote]
    collapses them by quorum, [compose] cascades a second stage over the
    survivors of the first, and [fallback] re-adjudicates through a
    backup when the primary loses quorum to abstentions. The semantics
    live in {!Core.Voting} (one shared counts-level algebra for the
    executable and closed-form paths); this module binds them to
    concrete [Channel.output] vectors.

    The legacy adjudicators are instances: [one_out_of_n = vote
    ~required:1], [m_out_of_n ~required = vote ~required], and on
    abstain-free inputs their decisions are byte-identical to the seed's
    (Shutdown iff enough shutdown votes). *)

type t

val unit : t
(** Identity for [compose]: adjudicates to the vote vector itself
    (collapsed: any shutdown vote wins, else any silent failure, else
    abstain). *)

val vote : required:int -> t
(** Quorum vote: [Shutdown] on at least [required] shutdown votes;
    [Abstain] when fewer than [required] channels are still voting
    (quorum lost to abstention); [No_action] otherwise. Raises
    [Invalid_argument] if [required < 1]. *)

val compose : t -> t -> t
(** [compose a b]: cascade — [b] adjudicates the survivors of [a]. *)

val fallback : t -> t -> t
(** [fallback a b]: decide by [a]; when [a] abstains (e.g. quorum
    loss), re-adjudicate the original outputs through [b]. *)

val one_out_of_n : t
(** The OR adjudicator (any shutdown vote suffices): [vote ~required:1]. *)

val m_out_of_n : required:int -> t
(** Demand at least [required] shutdown votes: [vote ~required]. Raises
    [Invalid_argument] if [required < 1]. *)

val min_channels : t -> int
(** Fewest channel outputs the adjudicator can reach a verdict on;
    [combine] raises below this arity. For [vote ~required:r] this is
    [r], preserving the legacy arity check. *)

val policy : t -> Core.Voting.policy
(** The underlying calculus term, for closed-form evaluation
    ({!Core.Voting.policy_mu} and friends). *)

val of_policy : Core.Voting.policy -> t

val combine : t -> Channel.output list -> Channel.output
(** Adjudicate a vector of channel outputs. Raises [Invalid_argument]
    on an empty output list or when more votes are required than
    channels are present. *)

val decide_counts :
  t -> shutdowns:int -> no_actions:int -> abstains:int -> Channel.output
(** Counts-level [combine] (adjudication is permutation-invariant, so
    counts determine the verdict) — the runner's Bitset fast path feeds
    this directly. Raises [Invalid_argument] on negative counts. *)

val system_fails : t -> Channel.output list -> bool
(** True when the combined output is not [Shutdown] on a demand — the
    plant misses the intervention whether the verdict is [No_action] or
    an unresolved [Abstain]. *)

val equal : t -> t -> bool
(** Structural equality of adjudicator terms. *)

val pp : Format.formatter -> t -> unit
