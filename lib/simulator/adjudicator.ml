type t = Core.Voting.policy

let unit = Core.Voting.Unit

let vote ~required =
  if required < 1 then
    invalid_arg "Adjudicator.m_out_of_n: required must be >= 1";
  Core.Voting.Vote required

let compose = Core.Voting.compose
let fallback = Core.Voting.fallback
let one_out_of_n = vote ~required:1
let m_out_of_n ~required = vote ~required
let policy t = t
let of_policy p = p
let min_channels = Core.Voting.policy_min_channels

let output_of_decision = function
  | Core.Voting.Shutdown -> Channel.Shutdown
  | Core.Voting.No_action -> Channel.No_action
  | Core.Voting.Abstain -> Channel.Abstain

let decide_counts t ~shutdowns ~no_actions ~abstains =
  output_of_decision (Core.Voting.decide t ~shutdowns ~no_actions ~abstains)

let combine t outputs =
  (match outputs with
  | [] -> invalid_arg "Adjudicator.combine: no channel outputs"
  | _ :: _ -> ());
  let shutdowns, no_actions, abstains =
    List.fold_left
      (fun (s, na, ab) o ->
        match o with
        | Channel.Shutdown -> (s + 1, na, ab)
        | Channel.No_action -> (s, na + 1, ab)
        | Channel.Abstain -> (s, na, ab + 1))
      (0, 0, 0) outputs
  in
  if min_channels t > shutdowns + no_actions + abstains then
    invalid_arg "Adjudicator.combine: more votes required than channels";
  decide_counts t ~shutdowns ~no_actions ~abstains

let system_fails t outputs =
  not (Channel.equal (combine t outputs) Channel.Shutdown)

let equal = Core.Voting.equal_policy
let pp = Core.Voting.pp_policy
