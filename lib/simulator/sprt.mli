(** Wald's sequential probability ratio test for PFD acceptance.

    The assessor practice Section 5 describes — deciding whether evidence
    supports "PFD below a given bound" — has a classical operational
    counterpart: observe demands sequentially and stop as soon as the
    likelihood ratio between a rejectable PFD (theta1) and an acceptable
    one (theta0) crosses Wald's boundaries. Used with a developed Fig. 1
    system, it measures how much operational evidence a diverse pair needs
    to be accepted compared with a single version. *)

type decision = Accept | Reject | Continue

type t
(** Mutable test state. *)

val create : theta0:float -> theta1:float -> alpha:float -> beta:float -> t
(** Test of H0: PFD <= theta0 against H1: PFD >= theta1 with type-I error
    [alpha] (wrongly rejecting a good system) and type-II error [beta].
    Raises [Invalid_argument] unless 0 < theta0 < theta1 < 1 and the error
    rates are in (0, 1). *)

val record : t -> failed:bool -> decision
(** Feed one demand outcome; once a decision is reached further outcomes
    are ignored. *)

val state : t -> decision
val demands_observed : t -> int
val failures_observed : t -> int
val log_likelihood_ratio : t -> float

val theta0 : t -> float
(** The acceptable PFD the test state was created with. *)

val theta1 : t -> float
(** The rejectable PFD the test state was created with. *)

val run :
  Numerics.Rng.t ->
  system:Protection.t ->
  theta0:float ->
  theta1:float ->
  alpha:float ->
  beta:float ->
  max_demands:int ->
  decision * t
(** Drive a protection system through operational demands until the test
    concludes or the budget runs out ([Continue] in that case). *)

val expected_sample_size_h0 :
  theta0:float -> theta1:float -> alpha:float -> beta:float -> float
(** Wald's approximation of the expected number of demands to a decision
    when the true PFD equals theta0. *)
