type t = { channels : Channel.t list; adjudicator : Adjudicator.t }

let create ?(adjudicator = Adjudicator.one_out_of_n) channels =
  if channels = [] then invalid_arg "Protection.create: no channels";
  if Adjudicator.min_channels adjudicator > List.length channels then
    invalid_arg "Protection.create: more votes required than channels";
  { channels; adjudicator }

let one_out_of_two a b = create [ a; b ]

let voted ~required channels =
  create ~adjudicator:(Adjudicator.m_out_of_n ~required) channels

let channels t = t.channels
let channel_count t = List.length t.channels
let adjudicator t = t.adjudicator

let space t =
  match t.channels with
  | [] -> assert false (* create forbids the empty channel list *)
  | first :: _ -> Demandspace.Version.space (Channel.version first)

let respond t demand =
  Adjudicator.combine t.adjudicator
    (List.map (fun c -> Channel.respond c demand) t.channels)

let fails_on t demand =
  not (Channel.equal (respond t demand) Channel.Shutdown)

let true_pfd t =
  (* Exact: count, demand by demand, whether enough channels survive.
     (For the 1-out-of-N adjudicator this is the intersection of the
     channels' failure sets.) An unresolved [Abstain] verdict counts as
     a system failure: the plant misses the intervention either way. *)
  let space = space t in
  let profile = Demandspace.Space.profile space in
  let acc = Numerics.Kahan.create () in
  for d = 0 to Demandspace.Space.size space - 1 do
    let demand = Demandspace.Demand.of_int d in
    if fails_on t demand then
      Numerics.Kahan.add acc (Demandspace.Profile.probability profile demand)
  done;
  Numerics.Kahan.total acc

let pp ppf t =
  Fmt.pf ppf "@[<v>protection system: %a@,%a@]" Adjudicator.pp t.adjudicator
    (Fmt.list ~sep:Fmt.cut Channel.pp)
    t.channels
