(** The development process as a random experiment (Section 2.2): each
    potential fault is independently left in the delivered version with its
    probability p_i ("as though the design team ... tossed dice to decide
    whether to insert it or not").

    Separate development of the two channels is modelled by independent
    draws from the same universe. *)

val sample_fault_set : Numerics.Rng.t -> Core.Universe.t -> int list
(** Indices of the faults present in one newly developed version. *)

val develop : Numerics.Rng.t -> Demandspace.Space.t -> Demandspace.Version.t
(** Develop a concrete version over a demand space (regions materialised,
    true PFD computable). *)

val develop_pair :
  Numerics.Rng.t -> Demandspace.Space.t -> Demandspace.Version.t * Demandspace.Version.t
(** Two independently developed versions — the paper's 1-out-of-2 setting. *)

val develop_many :
  Numerics.Rng.t -> Demandspace.Space.t -> count:int -> Demandspace.Version.t array
(** A population of versions (e.g. the 27 of the Knight–Leveson
    replication). *)

val develop_channel :
  ?detection:float ->
  Numerics.Rng.t ->
  Demandspace.Space.t ->
  name:string ->
  Channel.t
(** Develop one (possibly self-checking) channel: the version is drawn
    exactly as by {!develop}, then each introduced fault is caught by
    the team's runtime checks independently with probability
    [detection] (default 0 — no extra draws, plain binary channel); the
    channel abstains on demands in detected faults' regions. Raises
    [Invalid_argument] when [detection] is outside [0, 1]. *)

val develop_channels :
  ?detection:float ->
  Numerics.Rng.t ->
  Demandspace.Space.t ->
  count:int ->
  Channel.t array
(** [count] independently developed self-checking channels, named
    ch0..ch(count-1). *)

(** {2 Compiled abstract development}

    The Monte Carlo hot path samples millions of abstract versions from
    one universe. Compiling the universe turns its parameter vectors into
    plain arrays and reuses scratch bitsets for the sampled fault sets,
    replacing list construction and an O(k{^ 2}) list intersection with
    three linear passes — while consuming the RNG stream and ordering the
    compensated sums exactly as the uncompiled path, so results are
    byte-identical. *)

type compiled
(** A universe prepared for repeated sampling. Carries mutable scratch:
    use a compiled universe from one domain only (parallel code compiles
    one per shard). *)

val compile : Core.Universe.t -> compiled
(** O(n) preparation of one universe for repeated draws. *)

val version_pfd : Numerics.Rng.t -> compiled -> float
(** PFD of one sampled version under the non-overlap assumption. *)

val pair_pfd : Numerics.Rng.t -> compiled -> float * float * float
(** [(pfd_a, pfd_b, pfd_pair)] for an independently developed pair; the
    pair PFD is the summed measure of the common faults. *)

val version_pfd_from_universe : Numerics.Rng.t -> Core.Universe.t -> float
(** [version_pfd] through a per-domain one-slot compile cache, so looping
    on a single universe pays compilation once. *)

val pair_pfd_from_universe :
  Numerics.Rng.t -> Core.Universe.t -> float * float * float
(** [pair_pfd] through the same per-domain compile cache. *)

val adjudicated_system_pfd :
  ?detection:float ->
  Numerics.Rng.t ->
  compiled ->
  channels:int ->
  adjudicator:Adjudicator.t ->
  float
(** Sampled PFD of an N-channel system behind an arbitrary adjudicator
    term: [channels] abstract versions are drawn, carried faults are
    self-detected with probability [detection], and a fault's measure
    counts when its carrier/abstainer counts adjudicate to anything but
    Shutdown. With [detection = 0] and [adjudicator = vote ~required:r]
    this is the sampled counterpart of
    {!Core.Voting.policy_defeat_prob}'s closed form. Raises
    [Invalid_argument] when [channels < 1] or [detection] is outside
    [0, 1]. *)

val adjudicated_system_pfd_from_universe :
  ?detection:float ->
  Numerics.Rng.t ->
  Core.Universe.t ->
  channels:int ->
  adjudicator:Adjudicator.t ->
  float
(** [adjudicated_system_pfd] through the per-domain compile cache. *)
