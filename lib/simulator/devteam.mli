(** The development process as a random experiment (Section 2.2): each
    potential fault is independently left in the delivered version with its
    probability p_i ("as though the design team ... tossed dice to decide
    whether to insert it or not").

    Separate development of the two channels is modelled by independent
    draws from the same universe. *)

val sample_fault_set : Numerics.Rng.t -> Core.Universe.t -> int list
(** Indices of the faults present in one newly developed version. *)

val develop : Numerics.Rng.t -> Demandspace.Space.t -> Demandspace.Version.t
(** Develop a concrete version over a demand space (regions materialised,
    true PFD computable). *)

val develop_pair :
  Numerics.Rng.t -> Demandspace.Space.t -> Demandspace.Version.t * Demandspace.Version.t
(** Two independently developed versions — the paper's 1-out-of-2 setting. *)

val develop_many :
  Numerics.Rng.t -> Demandspace.Space.t -> count:int -> Demandspace.Version.t array
(** A population of versions (e.g. the 27 of the Knight–Leveson
    replication). *)

(** {2 Compiled abstract development}

    The Monte Carlo hot path samples millions of abstract versions from
    one universe. Compiling the universe turns its parameter vectors into
    plain arrays and reuses scratch bitsets for the sampled fault sets,
    replacing list construction and an O(k{^ 2}) list intersection with
    three linear passes — while consuming the RNG stream and ordering the
    compensated sums exactly as the uncompiled path, so results are
    byte-identical. *)

type compiled
(** A universe prepared for repeated sampling. Carries mutable scratch:
    use a compiled universe from one domain only (parallel code compiles
    one per shard). *)

val compile : Core.Universe.t -> compiled
(** O(n) preparation of one universe for repeated draws. *)

val version_pfd : Numerics.Rng.t -> compiled -> float
(** PFD of one sampled version under the non-overlap assumption. *)

val pair_pfd : Numerics.Rng.t -> compiled -> float * float * float
(** [(pfd_a, pfd_b, pfd_pair)] for an independently developed pair; the
    pair PFD is the summed measure of the common faults. *)

val version_pfd_from_universe : Numerics.Rng.t -> Core.Universe.t -> float
(** [version_pfd] through a per-domain one-slot compile cache, so looping
    on a single universe pays compilation once. *)

val pair_pfd_from_universe :
  Numerics.Rng.t -> Core.Universe.t -> float * float * float
(** [pair_pfd] through the same per-domain compile cache. *)
