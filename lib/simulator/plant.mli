(** The controlled plant as a demand source.

    The paper's footnote 2: "Our analysis refers to systems whose operation
    can be seen as a series of demands, possibly separated by idle
    periods." The plant emits demands drawn from the operational profile,
    optionally interleaved with idle steps. *)

type event = Demand of Demandspace.Demand.t | Idle

type t

val create : ?demand_rate:float -> profile:Demandspace.Profile.t -> Numerics.Rng.t -> t
(** [demand_rate] is the per-step probability that the plant state requires
    intervention (default 1.0: a pure demand sequence). *)

val step : t -> event
(** One operational step. *)

val next_demand : t -> Demandspace.Demand.t
(** Skip idle periods and produce the next demand. *)

val sample_demands_into : t -> int array -> n:int -> unit
(** Fill [buf.(0 .. n-1)] with the ids of the next [n] demands in one
    batch. Byte-compatible with [n] {!next_demand} calls — the RNG draw
    sequence is identical — so hot loops can sample in blocks without
    changing any output. Raises [Invalid_argument] if the plant has idle
    periods ([demand_rate < 1.0]), where batching would reorder draws. *)

val demands : t -> count:int -> Demandspace.Demand.t array
(** A batch of demands. *)

val demand_rate : t -> float
