type output = Shutdown | No_action | Abstain

type t = {
  name : string;
  version : Demandspace.Version.t;
  self_check : Numerics.Bitset.t option;
}

let create ?self_check ~name version =
  (match self_check with
  | Some s
    when Numerics.Bitset.length s
         <> Demandspace.Space.size (Demandspace.Version.space version) ->
      invalid_arg "Channel.create: self-check set sized to a different space"
  | Some _ | None -> ());
  { name; version; self_check }

let name t = t.name
let version t = t.version
let self_check t = t.self_check

let respond t demand =
  (* A demand is, by definition, a plant state requiring intervention; a
     correct channel commands shutdown. The channel fails exactly when the
     demand lies in its version's failure set — silently (No_action), or
     abstaining when its self-check covers the demand and withholds the
     wrong output. *)
  if Demandspace.Version.fails_on t.version demand then
    match t.self_check with
    | Some s when Numerics.Bitset.mem s (Demandspace.Demand.to_int demand) ->
        Abstain
    | Some _ | None -> No_action
  else Shutdown

let fails_on t demand = Demandspace.Version.fails_on t.version demand

let equal_output a b =
  match (a, b) with
  | Shutdown, Shutdown | No_action, No_action | Abstain, Abstain -> true
  | (Shutdown | No_action | Abstain), _ -> false

let equal = equal_output
let abstains_on t demand = equal_output (respond t demand) Abstain

let abstain_set t =
  let failure = Demandspace.Version.failure_set t.version in
  match t.self_check with
  | None -> Numerics.Bitset.create (Numerics.Bitset.length failure)
  | Some s -> Numerics.Bitset.inter failure s

let pfd t = Demandspace.Version.pfd t.version

let pp_output ppf = function
  | Shutdown -> Fmt.string ppf "shutdown"
  | No_action -> Fmt.string ppf "no-action"
  | Abstain -> Fmt.string ppf "abstain"

let pp ppf t =
  Fmt.pf ppf "channel %s (pfd=%.6g%s)" t.name (pfd t)
    (match t.self_check with Some _ -> ", self-checking" | None -> "")
