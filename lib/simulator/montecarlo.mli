(** Monte Carlo estimation of the model's distributions.

    The analytic results (moments, risk ratios, exact distributions) are all
    checkable by simulating the development process itself; this module is
    the harness the tests and experiments use to do so, and it also
    produces the synthetic version populations for the Knight–Leveson
    replication (E09). *)

type estimate = {
  replications : int;
  shards : int;  (** shard count the run was split into *)
  theta1 : Numerics.Stats.summary;  (** PFD of single versions *)
  theta2 : Numerics.Stats.summary;  (** PFD of independently developed pairs *)
  p_n1_pos : float;  (** empirical P(version has >= 1 fault with q > 0) *)
  p_n2_pos : float;  (** empirical P(pair has >= 1 common fault) *)
  risk_ratio : float;  (** empirical eq. (10) ratio *)
  theta1_samples : float array;
  theta2_samples : float array;
  shard_draws : int array;  (** RNG draws consumed by each shard's substream *)
}

val estimate :
  ?pool:Exec.Pool.t ->
  ?shards:int ->
  Numerics.Rng.t ->
  Core.Universe.t ->
  replications:int ->
  estimate
(** Sample independent development pairs from the universe. The work is
    split into [shards] (default {!Exec.default_shards}) deterministic
    slices, each on its own [Rng.split] substream: the result is a pure
    function of (seed, shards) and is byte-identical for any pool size. *)

val quantile_theta1 : estimate -> float -> float
val quantile_theta2 : estimate -> float -> float

type population = {
  version_pfds : float array;
  pair_pfds : float array;  (** all unordered pairs *)
  version_summary : Numerics.Stats.summary;
  pair_summary : Numerics.Stats.summary;
}

val version_population :
  ?pool:Exec.Pool.t ->
  ?shards:int ->
  Numerics.Rng.t ->
  Demandspace.Space.t ->
  count:int ->
  population
(** Develop [count] concrete versions over a demand space and evaluate every
    unordered pair as a 1-out-of-2 system (true set-intersection PFDs, no
    non-overlap assumption). Development is sequential on [rng]; the pure
    pairwise evaluation shards over a flattened pair-index table. *)

val knight_leveson_shape : population -> float * float
(** [(mean_ratio, std_ratio)] of pair vs version PFD; the paper's
    qualitative claim is both < 1 with the std shrinking more. *)

val empirical_system_pfd :
  ?pool:Exec.Pool.t ->
  ?shards:int ->
  Numerics.Rng.t ->
  Demandspace.Space.t ->
  replications:int ->
  demands_per_system:int ->
  float
(** Average observed failure rate over full develop-and-operate
    replications of the Fig. 1 system. Sharded like {!estimate}: each
    shard accumulates into a local Welford state, merged in shard
    order. *)
