open Numerics

(* Telemetry (all no-ops until enabled; see lib/obs): per-mission
   counters, a running failure-rate gauge to watch MTTF convergence, and
   a histogram of observed failure times. *)
let m_missions = Obs.Metrics.counter "campaign.missions"
let m_failures = Obs.Metrics.counter "campaign.failures"
let m_censored = Obs.Metrics.counter "campaign.censored"
let g_failure_rate = Obs.Metrics.gauge "campaign.running_failure_rate"
let g_survival = Obs.Metrics.gauge "campaign.last_survival_fraction"

let h_time_to_failure =
  (* Failure times are demand counts, not PFDs: buckets 1 .. 1e9. *)
  Obs.Metrics.histogram ~lo:1.0 ~decades:9 ~per_decade:4
    "campaign.time_to_first_failure"

type mission_outcome = Failed_at of int | Survived

let time_to_first_failure rng ~system ~max_demands =
  if max_demands <= 0 then
    invalid_arg "Campaign.time_to_first_failure: max_demands must be positive";
  let space = Protection.space system in
  let plant = Plant.create ~profile:(Demandspace.Space.profile space) rng in
  let rec step t =
    if t > max_demands then Survived
    else if Protection.fails_on system (Plant.next_demand plant) then
      Failed_at t
    else step (t + 1)
  in
  step 1

type mttf_estimate = {
  missions : int;
  failures : int;
  censored : int;
  mean_time_to_failure : float;
      (** over failed missions only; NaN if none failed *)
  failure_rate : float;  (** total failures / total demands observed *)
  shards : int;
  shard_draws : int array;
      (** RNG draws consumed by each shard's substream — per-domain draw
          accounting, collected on the worker and merged at join *)
}

let estimate_mttf ?pool ?shards rng ~system ~missions ~max_demands =
  if missions <= 0 then
    invalid_arg "Campaign.estimate_mttf: missions must be positive";
  let shards =
    match shards with Some s -> s | None -> Exec.default_shards ()
  in
  if shards < 1 then invalid_arg "Campaign.estimate_mttf: shards must be >= 1";
  let span = Obs.Trace.enter "campaign.estimate_mttf" in
  (* Missions are independent: each shard drives its contiguous slice on
     its own substream, writing into the shared outcome array (disjoint
     slices). Per-mission spans open on the worker and are attributed to
     the owning shard's trace lane. *)
  let outcomes = Array.make missions Survived in
  let child_rngs = Exec.split_rngs rng ~shards in
  let bounds = Exec.shard_bounds ~range:missions ~shards in
  let shard_draws =
    Exec.map_shards ?pool ~shards
      ~f:(fun k ->
        let lo, len = bounds.(k) in
        let rng_k = child_rngs.(k) in
        for m = lo to lo + len - 1 do
          let mission_span = Obs.Trace.enter "campaign.mission" in
          outcomes.(m) <- time_to_first_failure rng_k ~system ~max_demands;
          Obs.Trace.leave mission_span
        done;
        Rng.draws rng_k)
      ()
  in
  (* Join: replay the outcomes in mission order, so tallies, metrics, the
     running gauge and the run log are identical to a sequential pass
     over the same outcome sequence regardless of the pool size. *)
  let failures = ref 0 in
  let censored = ref 0 in
  let total_time = ref 0 in
  let failure_time = ref 0 in
  Array.iteri
    (fun m outcome ->
      let mission = m + 1 in
      (match outcome with
      | Failed_at t ->
          incr failures;
          failure_time := !failure_time + t;
          total_time := !total_time + t;
          Obs.Metrics.incr m_failures;
          Obs.Metrics.observe h_time_to_failure (float_of_int t);
          if Obs.Runlog.active () then
            Obs.Runlog.record ~kind:"campaign.mission"
              [
                ("mission", Obs.Json.Int mission);
                ("outcome", Obs.Json.String "failed");
                ("failed_at", Obs.Json.Int t);
              ]
      | Survived ->
          incr censored;
          total_time := !total_time + max_demands;
          Obs.Metrics.incr m_censored;
          if Obs.Runlog.active () then
            Obs.Runlog.record ~kind:"campaign.mission"
              [
                ("mission", Obs.Json.Int mission);
                ("outcome", Obs.Json.String "survived");
                ("max_demands", Obs.Json.Int max_demands);
              ]);
      Obs.Metrics.incr m_missions;
      if Obs.Metrics.is_enabled () then
        Obs.Metrics.set g_failure_rate
          (float_of_int !failures /. float_of_int !total_time))
    outcomes;
  Obs.Trace.leave span;
  {
    missions;
    failures = !failures;
    censored = !censored;
    mean_time_to_failure =
      (if !failures = 0 then nan
       else float_of_int !failure_time /. float_of_int !failures);
    failure_rate = float_of_int !failures /. float_of_int !total_time;
    shards;
    shard_draws;
  }

let theoretical_mttf ~pfd =
  if pfd <= 0.0 then infinity else 1.0 /. pfd

let mission_survival_probability ~pfd ~mission_demands =
  if pfd < 0.0 || pfd > 1.0 then
    invalid_arg "Campaign.mission_survival_probability: pfd outside [0, 1]";
  if mission_demands < 0 then
    invalid_arg "Campaign.mission_survival_probability: negative mission length";
  exp (float_of_int mission_demands *. Special.log1p (-.pfd))

let simulate_mission_survival ?pool ?shards rng ~system ~mission_demands
    ~missions =
  if missions <= 0 then
    invalid_arg "Campaign.simulate_mission_survival: missions must be positive";
  let shards =
    match shards with Some s -> s | None -> Exec.default_shards ()
  in
  let span = Obs.Trace.enter "campaign.simulate_mission_survival" in
  let child_rngs = Exec.split_rngs rng ~shards in
  let bounds = Exec.shard_bounds ~range:missions ~shards in
  let survived =
    Exec.map_reduce ?pool ~shards
      ~f:(fun k ->
        let _, len = bounds.(k) in
        let rng_k = child_rngs.(k) in
        let survived = ref 0 in
        for _ = 1 to len do
          match
            time_to_first_failure rng_k ~system ~max_demands:mission_demands
          with
          | Survived -> incr survived
          | Failed_at _ -> ()
        done;
        !survived)
      ~merge:( + ) ()
  in
  Obs.Metrics.add m_missions missions;
  let fraction = float_of_int survived /. float_of_int missions in
  Obs.Metrics.set g_survival fraction;
  Obs.Trace.leave span;
  fraction

type architecture_report = {
  label : string;
  analytic_pfd : float;
  simulated_mttf : mttf_estimate;
  survival_1000 : float;
}

let measure_architecture rng ~label ~system ~missions ~max_demands =
  let arch_span = Obs.Trace.enter ("campaign.architecture:" ^ label) in
  let analytic_pfd = Protection.true_pfd system in
  let report =
    {
      label;
      analytic_pfd;
      simulated_mttf = estimate_mttf rng ~system ~missions ~max_demands;
      survival_1000 =
        mission_survival_probability ~pfd:analytic_pfd ~mission_demands:1000;
    }
  in
  Obs.Trace.leave arch_span;
  report

let compare_architectures rng space ~architectures ~missions ~max_demands =
  List.map
    (fun (label, channels, required) ->
      if channels <= 0 then
        invalid_arg "Campaign.compare_architectures: channels must be positive";
      let mk () =
        Channel.create ~name:label (Devteam.develop rng space)
      in
      let system =
        Protection.voted ~required (List.init channels (fun _ -> mk ()))
      in
      measure_architecture rng ~label ~system ~missions ~max_demands)
    architectures

let compare_adjudicated ?detection rng space ~architectures ~missions
    ~max_demands =
  List.map
    (fun (label, channels, adjudicator) ->
      if channels <= 0 then
        invalid_arg "Campaign.compare_adjudicated: channels must be positive";
      let system =
        Protection.create ~adjudicator
          (Array.to_list
             (Devteam.develop_channels ?detection rng space ~count:channels))
      in
      measure_architecture rng ~label ~system ~missions ~max_demands)
    architectures
