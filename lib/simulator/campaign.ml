open Numerics

type mission_outcome = Failed_at of int | Survived

let time_to_first_failure rng ~system ~max_demands =
  if max_demands <= 0 then
    invalid_arg "Campaign.time_to_first_failure: max_demands must be positive";
  let space = Protection.space system in
  let plant = Plant.create ~profile:(Demandspace.Space.profile space) rng in
  let rec step t =
    if t > max_demands then Survived
    else if Protection.fails_on system (Plant.next_demand plant) then
      Failed_at t
    else step (t + 1)
  in
  step 1

type mttf_estimate = {
  missions : int;
  failures : int;
  censored : int;
  mean_time_to_failure : float;
      (** over failed missions only; NaN if none failed *)
  failure_rate : float;  (** total failures / total demands observed *)
}

let estimate_mttf rng ~system ~missions ~max_demands =
  if missions <= 0 then
    invalid_arg "Campaign.estimate_mttf: missions must be positive";
  let failures = ref 0 in
  let censored = ref 0 in
  let total_time = ref 0 in
  let failure_time = ref 0 in
  for _ = 1 to missions do
    match time_to_first_failure rng ~system ~max_demands with
    | Failed_at t ->
        incr failures;
        failure_time := !failure_time + t;
        total_time := !total_time + t
    | Survived ->
        incr censored;
        total_time := !total_time + max_demands
  done;
  {
    missions;
    failures = !failures;
    censored = !censored;
    mean_time_to_failure =
      (if !failures = 0 then nan
       else float_of_int !failure_time /. float_of_int !failures);
    failure_rate = float_of_int !failures /. float_of_int !total_time;
  }

let theoretical_mttf ~pfd =
  if pfd <= 0.0 then infinity else 1.0 /. pfd

let mission_survival_probability ~pfd ~mission_demands =
  if pfd < 0.0 || pfd > 1.0 then
    invalid_arg "Campaign.mission_survival_probability: pfd outside [0, 1]";
  if mission_demands < 0 then
    invalid_arg "Campaign.mission_survival_probability: negative mission length";
  exp (float_of_int mission_demands *. Special.log1p (-.pfd))

let simulate_mission_survival rng ~system ~mission_demands ~missions =
  if missions <= 0 then
    invalid_arg "Campaign.simulate_mission_survival: missions must be positive";
  let survived = ref 0 in
  for _ = 1 to missions do
    match time_to_first_failure rng ~system ~max_demands:mission_demands with
    | Survived -> incr survived
    | Failed_at _ -> ()
  done;
  float_of_int !survived /. float_of_int missions

type architecture_report = {
  label : string;
  analytic_pfd : float;
  simulated_mttf : mttf_estimate;
  survival_1000 : float;
}

let compare_architectures rng space ~architectures ~missions ~max_demands =
  List.map
    (fun (label, channels, required) ->
      if channels <= 0 then
        invalid_arg "Campaign.compare_architectures: channels must be positive";
      let mk () =
        Channel.create ~name:label (Devteam.develop rng space)
      in
      let system =
        Protection.voted ~required (List.init channels (fun _ -> mk ()))
      in
      let analytic_pfd = Protection.true_pfd system in
      {
        label;
        analytic_pfd;
        simulated_mttf = estimate_mttf rng ~system ~missions ~max_demands;
        survival_1000 =
          mission_survival_probability ~pfd:analytic_pfd ~mission_demands:1000;
      })
    architectures
