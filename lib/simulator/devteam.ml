open Numerics

let sample_fault_set rng universe =
  let present = ref [] in
  for i = Core.Universe.size universe - 1 downto 0 do
    if Rng.bool rng ~p:(Core.Fault.p (Core.Universe.fault universe i)) then
      present := i :: !present
  done;
  !present

let develop rng space =
  let present = ref [] in
  for i = Demandspace.Space.fault_count space - 1 downto 0 do
    if Rng.bool rng ~p:(Demandspace.Space.introduction_prob space i) then
      present := i :: !present
  done;
  Demandspace.Version.create space !present

let develop_pair rng space = (develop rng space, develop rng space)

let develop_many rng space ~count = Array.init count (fun _ -> develop rng space)

(* ------------------------------------------------------------------ *)
(* Compiled universes                                                 *)
(* ------------------------------------------------------------------ *)

(* The abstract-development hot path (millions of sampled versions per
   Monte Carlo run) compiles the universe once: parameter vectors become
   plain float arrays and sampled fault sets become bitsets, so a pair
   draw is two linear sampling passes plus one linear summing pass
   instead of list building and an O(k^2) list intersection. The scratch
   bitsets make a compiled universe single-domain: parallel code
   compiles one per shard (see Montecarlo). *)
type compiled = {
  n : int;
  ps : float array;
  qs : float array;
  bits_a : Bitset.t;
  bits_b : Bitset.t;
}

let compile universe =
  let n = Core.Universe.size universe in
  {
    n;
    ps = Core.Universe.ps universe;
    qs = Core.Universe.qs universe;
    bits_a = Bitset.create n;
    bits_b = Bitset.create n;
  }

(* Draw order must stay i = n-1 downto 0 — the order [sample_fault_set]
   has always used — so compiled sampling consumes the RNG stream
   byte-identically to the list-based path. *)
let sample_into rng c bits =
  Bitset.reset bits;
  for i = c.n - 1 downto 0 do
    if Rng.bool rng ~p:c.ps.(i) then Bitset.set bits i
  done

(* Summing in ascending index order with [Kahan.add] reproduces
   [Kahan.sum_list] over the ascending present-index list exactly. *)
let version_pfd rng c =
  sample_into rng c c.bits_a;
  let k = Kahan.create () in
  for i = 0 to c.n - 1 do
    if Bitset.mem c.bits_a i then Kahan.add k c.qs.(i)
  done;
  Kahan.total k

let pair_pfd rng c =
  sample_into rng c c.bits_a;
  sample_into rng c c.bits_b;
  let ka = Kahan.create () and kb = Kahan.create () and kc = Kahan.create () in
  for i = 0 to c.n - 1 do
    let in_a = Bitset.mem c.bits_a i and in_b = Bitset.mem c.bits_b i in
    if in_a then Kahan.add ka c.qs.(i);
    if in_b then Kahan.add kb c.qs.(i);
    if in_a && in_b then Kahan.add kc c.qs.(i)
  done;
  (Kahan.total ka, Kahan.total kb, Kahan.total kc)

(* One-slot per-domain cache so the from_universe wrappers stay cheap
   when called in a loop on one universe (the benchmarks do exactly
   this). Domain-local storage keeps the mutable scratch contained. *)
let compiled_cache : (Core.Universe.t * compiled) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let compiled_of universe =
  let cache = Domain.DLS.get compiled_cache in
  match !cache with
  | Some (u, c) when u == universe -> c
  | _ ->
      let c = compile universe in
      cache := Some (universe, c);
      c

let version_pfd_from_universe rng universe = version_pfd rng (compiled_of universe)

let pair_pfd_from_universe rng universe = pair_pfd rng (compiled_of universe)
