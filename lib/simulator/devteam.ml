open Numerics

let sample_fault_set rng universe =
  let present = ref [] in
  for i = Core.Universe.size universe - 1 downto 0 do
    if Rng.bool rng ~p:(Core.Fault.p (Core.Universe.fault universe i)) then
      present := i :: !present
  done;
  !present

let develop rng space =
  let present = ref [] in
  for i = Demandspace.Space.fault_count space - 1 downto 0 do
    if Rng.bool rng ~p:(Demandspace.Space.introduction_prob space i) then
      present := i :: !present
  done;
  Demandspace.Version.create space !present

let develop_pair rng space = (develop rng space, develop rng space)

let develop_many rng space ~count = Array.init count (fun _ -> develop rng space)

(* Self-checking development (Boiten): after the version's faults are
   drawn exactly as [develop] draws them, each introduced fault is
   independently caught by the team's runtime checks with probability
   [detection]; the channel then abstains (instead of failing silently)
   on every demand in a detected fault's region. [detection = 0] makes
   no detection draws and returns a channel byte-identical in behaviour
   to [Channel.create] over [develop]. *)
let develop_channel ?(detection = 0.0) rng space ~name =
  if detection < 0.0 || detection > 1.0 then
    invalid_arg "Devteam.develop_channel: detection outside [0, 1]";
  let version = develop rng space in
  if detection <= 0.0 then Channel.create ~name version
  else
    let detected =
      List.filter
        (fun _ -> Rng.bool rng ~p:detection)
        (Demandspace.Version.present_faults version)
    in
    match detected with
    | [] -> Channel.create ~name version
    | _ :: _ ->
        let self_check =
          Demandspace.Region.union_members
            (List.map (Demandspace.Space.region space) detected)
        in
        Channel.create ~self_check ~name version

let develop_channels ?detection rng space ~count =
  Array.init count (fun i ->
      develop_channel ?detection rng space ~name:(Printf.sprintf "ch%d" i))

(* ------------------------------------------------------------------ *)
(* Compiled universes                                                 *)
(* ------------------------------------------------------------------ *)

(* The abstract-development hot path (millions of sampled versions per
   Monte Carlo run) compiles the universe once: parameter vectors become
   plain float arrays and sampled fault sets become bitsets, so a pair
   draw is two linear sampling passes plus one linear summing pass
   instead of list building and an O(k^2) list intersection. The scratch
   bitsets make a compiled universe single-domain: parallel code
   compiles one per shard (see Montecarlo). *)
type compiled = {
  n : int;
  ps : float array;
  qs : float array;
  bits_a : Bitset.t;
  bits_b : Bitset.t;
}

let compile universe =
  let n = Core.Universe.size universe in
  {
    n;
    ps = Core.Universe.ps universe;
    qs = Core.Universe.qs universe;
    bits_a = Bitset.create n;
    bits_b = Bitset.create n;
  }

(* Draw order must stay i = n-1 downto 0 — the order [sample_fault_set]
   has always used — so compiled sampling consumes the RNG stream
   byte-identically to the list-based path. *)
let sample_into rng c bits =
  Bitset.reset bits;
  for i = c.n - 1 downto 0 do
    if Rng.bool rng ~p:c.ps.(i) then Bitset.set bits i
  done

(* Summing in ascending index order with [Kahan.add] reproduces
   [Kahan.sum_list] over the ascending present-index list exactly. *)
let version_pfd rng c =
  sample_into rng c c.bits_a;
  let k = Kahan.create () in
  for i = 0 to c.n - 1 do
    if Bitset.mem c.bits_a i then Kahan.add k c.qs.(i)
  done;
  Kahan.total k

let pair_pfd rng c =
  sample_into rng c c.bits_a;
  sample_into rng c c.bits_b;
  let ka = Kahan.create () and kb = Kahan.create () and kc = Kahan.create () in
  for i = 0 to c.n - 1 do
    let in_a = Bitset.mem c.bits_a i and in_b = Bitset.mem c.bits_b i in
    if in_a then Kahan.add ka c.qs.(i);
    if in_b then Kahan.add kb c.qs.(i);
    if in_a && in_b then Kahan.add kc c.qs.(i)
  done;
  (Kahan.total ka, Kahan.total kb, Kahan.total kc)

(* One-slot per-domain cache so the from_universe wrappers stay cheap
   when called in a loop on one universe (the benchmarks do exactly
   this). Domain-local storage keeps the mutable scratch contained. *)
let compiled_cache : (Core.Universe.t * compiled) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let compiled_of universe =
  let cache = Domain.DLS.get compiled_cache in
  match !cache with
  | Some (u, c) when u == universe -> c
  | _ ->
      let c = compile universe in
      cache := Some (universe, c);
      c

let version_pfd_from_universe rng universe = version_pfd rng (compiled_of universe)

let pair_pfd_from_universe rng universe = pair_pfd rng (compiled_of universe)

(* Sampled PFD of an N-channel system behind an arbitrary adjudicator
   term: develop [channels] abstract versions (each drawn in
   [sample_into]'s i = n-1 downto 0 order, channel by channel), give
   carried faults a [detection] chance of being caught by the channel's
   self-check, and charge q_i for every fault whose carrier/abstainer
   counts adjudicate to anything but Shutdown. With [detection = 0] and
   [adjudicator = vote ~required:r] this samples exactly the M-out-of-N
   system the closed form [Core.Voting.policy_defeat_prob] integrates. *)
let adjudicated_system_pfd ?(detection = 0.0) rng c ~channels ~adjudicator =
  if channels < 1 then
    invalid_arg "Devteam.adjudicated_system_pfd: channels must be >= 1";
  if detection < 0.0 || detection > 1.0 then
    invalid_arg "Devteam.adjudicated_system_pfd: detection outside [0, 1]";
  let carriers = Array.make c.n 0 in
  let abstainers = Array.make c.n 0 in
  for _ = 1 to channels do
    for i = c.n - 1 downto 0 do
      if Rng.bool rng ~p:c.ps.(i) then begin
        carriers.(i) <- carriers.(i) + 1;
        if detection > 0.0 && Rng.bool rng ~p:detection then
          abstainers.(i) <- abstainers.(i) + 1
      end
    done
  done;
  let k = Kahan.create () in
  for i = 0 to c.n - 1 do
    let f = carriers.(i) and ab = abstainers.(i) in
    match
      Adjudicator.decide_counts adjudicator ~shutdowns:(channels - f)
        ~no_actions:(f - ab) ~abstains:ab
    with
    | Channel.Shutdown -> ()
    | Channel.No_action | Channel.Abstain -> Kahan.add k c.qs.(i)
  done;
  Kahan.total k

let adjudicated_system_pfd_from_universe ?detection rng universe ~channels
    ~adjudicator =
  adjudicated_system_pfd ?detection rng (compiled_of universe) ~channels
    ~adjudicator
