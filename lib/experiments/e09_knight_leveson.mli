(** E09 — reproduces Section 7 (Knight-Leveson check). Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
