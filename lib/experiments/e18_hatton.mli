(** E18 — reproduces Section 1 (Hatton [1], refs [6][7]). Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
