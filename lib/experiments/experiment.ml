type output = {
  tables : Report.Table.t list;
  figures : string list;
  notes : string list;
}

type t = {
  id : string;
  paper_ref : string;
  description : string;
  run : seed:int -> output;
}

let make ~id ~paper_ref ~description run = { id; paper_ref; description; run }

let output ?(tables = []) ?(figures = []) ?(notes = []) () =
  { tables; figures; notes }

let render_output out =
  let buf = Buffer.create 1024 in
  List.iter (fun t -> Buffer.add_string buf (Report.Table.render t)) out.tables;
  List.iter
    (fun f ->
      Buffer.add_string buf f;
      if not (String.length f > 0 && f.[String.length f - 1] = '\n') then
        Buffer.add_char buf '\n')
    out.figures;
  List.iter (fun n -> Buffer.add_string buf ("note: " ^ n ^ "\n")) out.notes;
  Buffer.contents buf

let render ?(seed = 42) t =
  Printf.sprintf "\n################ %s — %s ################\n%s\n%s" t.id
    t.paper_ref t.description
    (render_output (t.run ~seed))
