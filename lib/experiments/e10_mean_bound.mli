(** E10 — reproduces Section 3.1.1, eq. (4). Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
