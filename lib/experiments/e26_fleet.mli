(** E26 — reproduces Section 3 (variance made observable). Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
