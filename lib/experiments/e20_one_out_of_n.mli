(** E20 — reproduces extension of Sections 3-5. Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
