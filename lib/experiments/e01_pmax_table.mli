(** E01 — reproduces Section 5.1 table. Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
