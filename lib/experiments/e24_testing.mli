(** E24 — reproduces Section 4.2.3, ref [13]. Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
