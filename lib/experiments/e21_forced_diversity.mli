(** E21 — reproduces Section 1 (forced diversity), LM [4]. Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
