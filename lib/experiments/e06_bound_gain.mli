(** E06 — reproduces Section 5.1, eqs. (11)-(12). Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
