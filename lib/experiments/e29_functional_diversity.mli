(** E29 — reproduces Fig. 1 caption, ref [8]. Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
