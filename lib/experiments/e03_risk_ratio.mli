(** E03 — reproduces Section 4.1, eq. (10). Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
