(** E19 — reproduces Section 4.1, footnote 5. Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
