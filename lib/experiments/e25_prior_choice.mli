(** E25 — reproduces Section 7 conclusions. Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
