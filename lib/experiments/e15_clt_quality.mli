(** E15 — reproduces Sections 3, 5, 7 (CLT argument). Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
