(** E02 — reproduces Section 5.1 worked example. Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
