(** All reproduced paper artefacts, keyed by the DESIGN.md experiment ids. *)

val all : Experiment.t list
(** Every experiment, in id order. *)

val find : string -> Experiment.t option
(** Case-insensitive lookup by id (e.g. "E04"). *)

val ids : unit -> string list

val render_all : ?seed:int -> unit -> string
(** Run every experiment and render the concatenated reports (the bench
    harness's table pass). The caller prints. *)
