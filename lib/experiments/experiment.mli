(** Common shape of a reproduced paper artefact: an id (see DESIGN.md's
    per-experiment index), the paper section it reproduces, and a runner
    producing tables, ASCII figures and free-form notes. *)

type output = {
  tables : Report.Table.t list;
  figures : string list;
  notes : string list;
}

type t = {
  id : string;
  paper_ref : string;
  description : string;
  run : seed:int -> output;
}

val make :
  id:string -> paper_ref:string -> description:string -> (seed:int -> output) -> t

val output :
  ?tables:Report.Table.t list ->
  ?figures:string list ->
  ?notes:string list ->
  unit ->
  output

val render_output : output -> string

val render : ?seed:int -> t -> string
(** Run the experiment and render it (header plus {!render_output}) as a
    string. Printing is left to the caller: lib code must stay free of
    output side effects (divlint rule R5). *)
