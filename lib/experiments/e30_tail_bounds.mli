(** E30 — reproduces Section 5 (alternative to the CLT). Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
