(** E08 — reproduces Fig. 2, Section 2.1. Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
