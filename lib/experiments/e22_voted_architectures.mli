(** E22 — reproduces extension (Fig. 1 generalised). Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
