(** E17 — reproduces Section 3.1.1 remark. Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
