(** E04 — reproduces Section 4.2.1, Appendix A. Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
