let all : Experiment.t list =
  [
    E01_pmax_table.experiment;
    E02_worked_example.experiment;
    E03_risk_ratio.experiment;
    E04_single_fault_improvement.experiment;
    E05_proportional_improvement.experiment;
    E06_bound_gain.experiment;
    E07_bound_conjectures.experiment;
    E08_fig2_demand_space.experiment;
    E09_knight_leveson.experiment;
    E10_mean_bound.experiment;
    E11_golden_lemma.experiment;
    E12_correlated_faults.experiment;
    E13_overlap.experiment;
    E14_el_lm.experiment;
    E15_clt_quality.experiment;
    E16_bayes.experiment;
    E17_vs_independence.experiment;
    E18_hatton.experiment;
    E19_success_ratio.experiment;
    E20_one_out_of_n.experiment;
    E21_forced_diversity.experiment;
    E22_voted_architectures.experiment;
    E23_estimation.experiment;
    E24_testing.experiment;
    E25_prior_choice.experiment;
    E26_fleet.experiment;
    E27_mission.experiment;
    E28_profile_robustness.experiment;
    E29_functional_diversity.experiment;
    E30_tail_bounds.experiment;
    E31_sprt.experiment;
  ]

let find id =
  List.find_opt
    (fun e -> String.lowercase_ascii e.Experiment.id = String.lowercase_ascii id)
    all

let ids () = List.map (fun e -> e.Experiment.id) all

let render_all ?seed () =
  String.concat "" (List.map (Experiment.render ?seed) all)
