(** E05 — reproduces Section 4.2.2, Appendix B. Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
