(** E16 — reproduces Section 7 conclusions, ref [14]. Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
