(** E13 — reproduces Section 6.2. Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
