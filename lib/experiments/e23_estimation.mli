(** E23 — reproduces Section 3.1.1 (empirical programme). Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
