(** E31 — reproduces Section 5 practice (assessment). Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
