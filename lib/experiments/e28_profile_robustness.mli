(** E28 — reproduces Section 2.1 (unknown profile). Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
