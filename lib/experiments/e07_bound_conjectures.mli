(** E07 — reproduces Section 5.2. Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
