(** E14 — reproduces Section 2.2 (EL [3], LM [4]). Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
