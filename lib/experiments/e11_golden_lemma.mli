(** E11 — reproduces Section 3.1.2, eq. (9). Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
