(** E27 — reproduces operational view of Fig. 1. Only the registered artefact is exposed; run it through [Registry] or the experiments CLI. *)

val experiment : Experiment.t
