(* E26 — making the paper's distributional results observable: the PFD
   varies across developed systems (sigma1, sigma2 of eqs. 2), so failure
   counts across a fleet of plants are over-dispersed relative to a
   common-PFD binomial, and the method of moments recovers E(Theta) and
   Var(Theta) from field counts alone. *)

let run ~seed =
  let rng = Numerics.Rng.create ~seed in
  let space =
    Demandspace.Genspace.disjoint_space
      (Numerics.Rng.split rng ~index:0)
      ~width:40 ~height:40 ~n_faults:12 ~max_extent:5 ~p_lo:0.1 ~p_hi:0.4
      ~profile:(Demandspace.Profile.uniform ~size:(40 * 40))
  in
  let u = Demandspace.Space.to_universe space in
  let plants = 400 and demands_per_plant = 20_000 in
  let observe_fleet deploy index =
    let r = Numerics.Rng.split rng ~index in
    Simulator.Fleet.observe r (deploy r space ~plants) ~demands_per_plant
  in
  let singles =
    observe_fleet (fun r s ~plants -> Simulator.Fleet.deploy_singles r s ~plants) 1
  in
  let pairs =
    observe_fleet (fun r s ~plants -> Simulator.Fleet.deploy_pairs r s ~plants) 2
  in
  let row label fleet (model_mu, model_sigma) =
    let _mu_hat, var_hat = Simulator.Fleet.estimate_pfd_moments fleet in
    let d = Simulator.Fleet.dispersion fleet in
    [
      label;
      Report.Table.float (Simulator.Fleet.pooled_rate fleet);
      Report.Table.float model_mu;
      Report.Table.float (sqrt var_hat);
      Report.Table.float model_sigma;
      Report.Table.float ~precision:3 d.Simulator.Fleet.overdispersion;
    ]
  in
  let table =
    Report.Table.of_rows
      ~title:
        (Printf.sprintf
           "Fleet of %d plants, %d demands each: recovering the model's \
            moments from counts"
           plants demands_per_plant)
      ~headers:
        [
          "fleet"; "pooled rate"; "model mu"; "MoM sigma est."; "model sigma";
          "overdispersion";
        ]
      [
        row "single-version plants" singles
          (Core.Moments.mu1 u, Core.Moments.sigma1 u);
        row "1oo2 plants" pairs (Core.Moments.mu2 u, Core.Moments.sigma2 u);
      ]
  in
  let oracle =
    let s1 = Simulator.Fleet.true_pfd_summary singles in
    let s2 = Simulator.Fleet.true_pfd_summary pairs in
    Report.Table.of_rows
      ~title:"Oracle check: true per-plant PFDs behind the counts"
      ~headers:[ "fleet"; "true mean PFD"; "true std PFD" ]
      [
        [
          "single-version plants";
          Report.Table.float s1.Numerics.Stats.mean;
          Report.Table.float s1.Numerics.Stats.std;
        ];
        [
          "1oo2 plants";
          Report.Table.float s2.Numerics.Stats.mean;
          Report.Table.float s2.Numerics.Stats.std;
        ];
      ]
  in
  Experiment.output ~tables:[ table; oracle ]
    ~notes:
      [
        "overdispersion >> 1 in both fleets is the observable footprint of \
         sigma > 0 (the PFD differs across developments) — a field-data \
         route to exactly the quantities the paper reasons about";
        "the 1oo2 fleet is MORE overdispersed despite its smaller sigma: \
         overdispersion tracks the RELATIVE spread Var/mu, and diversity \
         shrinks the mean (factor <= pmax, eq. 4) faster than the standard \
         deviation (factor sqrt(pmax(1+pmax)), eq. 9), so the coefficient \
         of variation of the PFD rises — the flip side of the paper's own \
         bound asymmetry";
      ]
    ()

let experiment =
  Experiment.make ~id:"E26" ~paper_ref:"Section 3 (variance made observable)"
    ~description:
      "Fleet over-dispersion reveals the PFD distribution across \
       developments; method of moments recovers mu and sigma from counts"
    run
