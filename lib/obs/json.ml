(* Minimal JSON tree, renderer and parser.

   The telemetry layer (Metrics, Trace, Runlog) renders everything through
   this one module so that every artefact we emit — metrics snapshots,
   Chrome trace files, JSONL run logs, BENCH_kernels.json — is produced by
   a single audited serializer, and the parser lets tests and the
   benchcheck gate verify well-formedness without external dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr f =
  (* JSON has no NaN/Infinity tokens; map non-finite values to null. *)
  match Float.classify_float f with
  | FP_nan | FP_infinite -> "null"
  | FP_zero | FP_normal | FP_subnormal ->
      let s = Printf.sprintf "%.17g" f in
      (* Prefer a shorter representation when it round-trips. *)
      let short = Printf.sprintf "%g" f in
      if float_of_string short = f then short else s

let rec render_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      escape_into buf s;
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          render_into buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_into buf k;
          Buffer.add_string buf "\":";
          render_into buf v)
        fields;
      Buffer.add_char buf '}'

let render v =
  let buf = Buffer.create 256 in
  render_into buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

exception Parse_failure of string

let utf8_encode buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse s =
  let len = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_failure (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let n = String.length word in
    if !pos + n <= len && String.sub s !pos n = word then begin
      pos := !pos + n;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "invalid hex digit in \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> begin
          if !pos >= len then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              if !pos + 4 > len then fail "truncated \\u escape";
              let cp =
                (hex_digit s.[!pos] lsl 12)
                lor (hex_digit s.[!pos + 1] lsl 8)
                lor (hex_digit s.[!pos + 2] lsl 4)
                lor hex_digit s.[!pos + 3]
              in
              pos := !pos + 4;
              utf8_encode buf cp
          | _ -> fail "invalid escape");
          go ()
        end
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char s.[!pos] do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    let looks_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok
    in
    if looks_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "invalid number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "invalid number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing content after JSON value";
    v
  with
  | v -> Ok v
  | exception Parse_failure msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List items -> Some items | _ -> None
let to_string = function String s -> Some s | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None
