(** Nested spans over the monotonic {!Clock}, exported as a text tree or
    Chrome trace-event JSON.

    Tracing is globally disabled by default: {!enter} then costs one
    branch and returns the null handle, and {!leave} on it is a no-op, so
    spans can be left permanently in hot loops. Spans are recorded in
    start order with their nesting depth taken from the currently open
    spans. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

type handle
(** Token returned by {!enter}; pass it to {!leave}. *)

val null_handle : handle
(** The handle returned while tracing is disabled; {!leave} ignores it. *)

val enter : string -> handle
(** Open a span. The span nests under the most recently opened span that
    has not been left yet. *)

val leave : handle -> unit
(** Close the span, recording its duration. Out-of-order leaves are
    tolerated (the span's duration is still recorded). *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] brackets [f] in a span, leaving it even if [f]
    raises. *)

val reset : unit -> unit
(** Drop all recorded spans and any open-span state. *)

type span = { name : string; depth : int; start_ns : int64; dur_ns : int64 }
(** Immutable view of a recorded span; [dur_ns] is [-1] while open. *)

val spans : unit -> span list
(** All recorded spans in start order. *)

val span_count : unit -> int

val to_text : unit -> string
(** Indented tree, one line per span with a human-readable duration. *)

val to_chrome_json : unit -> Json.t
(** Chrome trace-event JSON (["ph":"X"] complete events, microsecond
    timestamps relative to the first span); loadable in chrome://tracing
    and Perfetto. *)

val render_chrome_json : unit -> string
