(** Nested spans over the monotonic {!Clock}, exported as a text tree or
    Chrome trace-event JSON.

    Tracing is globally disabled by default: {!enter} then costs one
    branch and returns the null handle, and {!leave} on it is a no-op, so
    spans can be left permanently in hot loops. Spans are recorded in
    start order with their nesting depth taken from the currently open
    spans {e of the same shard}: each shard (see {!with_shard}, applied
    by [Exec.map_shards] to every worker task) keeps its own open-span
    stack, so traces from parallel runs remain well-nested per shard.
    While enabled, recording is protected by a mutex and safe to use
    from multiple domains. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val with_shard : int -> (unit -> 'a) -> 'a
(** [with_shard k f] runs [f] with spans attributed to shard [k]
    (domain-local state; restored on exit). Code outside any sharded
    region records under shard 0. *)

val current_shard : unit -> int
(** The shard id spans opened by this domain are attributed to. *)

type handle
(** Token returned by {!enter}; pass it to {!leave}. *)

val null_handle : handle
(** The handle returned while tracing is disabled; {!leave} ignores it. *)

val enter : string -> handle
(** Open a span. The span nests under the most recently opened span that
    has not been left yet. *)

val leave : handle -> unit
(** Close the span, recording its duration. Out-of-order leaves are
    tolerated (the span's duration is still recorded). *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] brackets [f] in a span, leaving it even if [f]
    raises. *)

val reset : unit -> unit
(** Drop all recorded spans and any open-span state. *)

type span = {
  name : string;
  shard : int;  (** owning shard (Chrome export ["tid"]); 0 outside sharded regions *)
  depth : int;
  start_ns : int64;
  dur_ns : int64;
}
(** Immutable view of a recorded span; [dur_ns] is [-1] while open. *)

val spans : unit -> span list
(** All recorded spans in start order. *)

val span_count : unit -> int

val to_text : unit -> string
(** Indented tree, one line per span with a human-readable duration. *)

val to_chrome_json : unit -> Json.t
(** Chrome trace-event JSON (["ph":"X"] complete events, microsecond
    timestamps relative to the first span); loadable in chrome://tracing
    and Perfetto. *)

val render_chrome_json : unit -> string
