(* Counters, gauges and log-bucketed histograms with a global registry.

   All mutation goes through a single enabled flag, so with telemetry off
   (the default) every instrument operation costs exactly one load and one
   conditional branch and allocates nothing — the simulator hot loops stay
   as fast as uninstrumented code. Instrument *creation* happens at module
   initialisation regardless of the flag, so enabling telemetry later
   observes every registered instrument.

   Domain safety: counters are atomic, so concurrent increments from
   pool workers are never lost. Gauges and histograms stay single-writer
   structures — parallel code paths accumulate per shard and merge into
   them at join on the calling domain (see lib/exec), which is both
   cheaper than per-observation synchronisation and deterministic. *)

let enabled = ref false
let set_enabled b = enabled := b
let is_enabled () = !enabled

type counter = { c_name : string; count : int Atomic.t }
type gauge = { g_name : string; mutable g_value : float; mutable g_set : bool }

type histogram = {
  h_name : string;
  lo : float;  (* lower edge of the first log bucket *)
  per_decade : int;
  n_buckets : int;  (* log buckets, excluding underflow/overflow *)
  counts : int array;  (* [0] underflow, [1..n] log buckets, [n+1] overflow *)
  mutable total : int;
  mutable sum : float;
  mutable min_seen : float;
  mutable max_seen : float;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : instrument list ref = ref []
let register i = registry := i :: !registry
let registered () = List.rev !registry

(* ------------------------------------------------------------------ *)
(* Counters                                                           *)
(* ------------------------------------------------------------------ *)

let counter name =
  let c = { c_name = name; count = Atomic.make 0 } in (* divlint: allow domain-containment *)
  register (Counter c);
  c

(* divlint: allow domain-containment *)
let incr c = if !enabled then Atomic.incr c.count

let add c n =
  (* divlint: allow domain-containment *)
  if !enabled then ignore (Atomic.fetch_and_add c.count n)

let counter_name c = c.c_name
let counter_value c = Atomic.get c.count (* divlint: allow domain-containment *)

(* ------------------------------------------------------------------ *)
(* Gauges                                                             *)
(* ------------------------------------------------------------------ *)

let gauge name =
  let g = { g_name = name; g_value = 0.0; g_set = false } in
  register (Gauge g);
  g

let set g v =
  if !enabled then begin
    g.g_value <- v;
    g.g_set <- true
  end

let gauge_name g = g.g_name
let gauge_value g = if g.g_set then Some g.g_value else None

(* ------------------------------------------------------------------ *)
(* Histograms                                                         *)
(* ------------------------------------------------------------------ *)

(* Log-spaced buckets sized for PFD magnitudes: by default 9 decades from
   1e-9 up to 1.0, [per_decade] buckets per decade. Values below [lo]
   (including 0, a common PFD) land in the underflow bucket; values at or
   above the top edge land in the overflow bucket. *)
let histogram ?(lo = 1e-9) ?(decades = 9) ?(per_decade = 4) name =
  if not (lo > 0.0) then invalid_arg "Metrics.histogram: lo must be positive";
  if decades <= 0 || per_decade <= 0 then
    invalid_arg "Metrics.histogram: decades and per_decade must be positive";
  let n_buckets = decades * per_decade in
  let h =
    {
      h_name = name;
      lo;
      per_decade;
      n_buckets;
      counts = Array.make (n_buckets + 2) 0;
      total = 0;
      sum = 0.0;
      min_seen = infinity;
      max_seen = neg_infinity;
    }
  in
  register (Histogram h);
  h

(* Index of the log bucket holding [x], in [0, n_buckets); out-of-range
   values map to -1 (underflow) / n_buckets (overflow). The 1e-9 nudge
   keeps exact decade edges (1e-7, 1e-6, ...) in the bucket they open
   despite log10 rounding. *)
let log_index h x =
  if x < h.lo then -1
  else
    let i =
      int_of_float
        (Float.floor ((Float.log10 (x /. h.lo) *. float_of_int h.per_decade) +. 1e-9))
    in
    if i < 0 then -1 else if i > h.n_buckets then h.n_buckets else i

let observe h x =
  if !enabled then begin
    h.total <- h.total + 1;
    h.sum <- h.sum +. x;
    if x < h.min_seen then h.min_seen <- x;
    if x > h.max_seen then h.max_seen <- x;
    let i = log_index h x in
    let slot = if i < 0 then 0 else if i >= h.n_buckets then h.n_buckets + 1 else i + 1 in
    h.counts.(slot) <- h.counts.(slot) + 1
  end

let bucket_edge h i =
  (* Lower edge of log bucket [i]; [i = n_buckets] gives the top edge. *)
  h.lo *. (10.0 ** (float_of_int i /. float_of_int h.per_decade))

let buckets h =
  Array.init
    (h.n_buckets + 2)
    (fun slot ->
      if slot = 0 then (0.0, h.lo, h.counts.(0))
      else if slot = h.n_buckets + 1 then
        (bucket_edge h h.n_buckets, infinity, h.counts.(slot))
      else (bucket_edge h (slot - 1), bucket_edge h slot, h.counts.(slot)))

let histogram_name h = h.h_name
let histogram_count h = h.total
let histogram_sum h = h.sum
let histogram_min h = if h.total = 0 then None else Some h.min_seen
let histogram_max h = if h.total = 0 then None else Some h.max_seen

let quantile h q =
  (* Bucket-resolution estimate: the geometric midpoint of the bucket in
     which the cumulative count crosses [q]; the underflow/overflow
     buckets report their finite edge. *)
  if q < 0.0 || q > 1.0 then invalid_arg "Metrics.quantile: q outside [0, 1]";
  if h.total = 0 then None
  else begin
    let target =
      let t = int_of_float (Float.ceil (q *. float_of_int h.total)) in
      if t < 1 then 1 else t
    in
    let slot = ref 0 and seen = ref 0 in
    (try
       for i = 0 to h.n_buckets + 1 do
         seen := !seen + h.counts.(i);
         if !seen >= target then begin
           slot := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !slot = 0 then Some h.lo
    else if !slot = h.n_buckets + 1 then Some (bucket_edge h h.n_buckets)
    else
      let lo = bucket_edge h (!slot - 1) and hi = bucket_edge h !slot in
      Some (sqrt (lo *. hi))
  end

(* ------------------------------------------------------------------ *)
(* Registry-wide operations                                           *)
(* ------------------------------------------------------------------ *)

let reset_values () =
  List.iter
    (function
      | Counter c -> Atomic.set c.count 0 (* divlint: allow domain-containment *)
      | Gauge g ->
          g.g_value <- 0.0;
          g.g_set <- false
      | Histogram h ->
          Array.fill h.counts 0 (Array.length h.counts) 0;
          h.total <- 0;
          h.sum <- 0.0;
          h.min_seen <- infinity;
          h.max_seen <- neg_infinity)
    !registry

(* The quantiles every histogram summarises with, in text and JSON
   rendering alike: median plus the two tail percentiles operators
   actually alert on. Bucket-resolution estimates (see {!quantile}). *)
let summary_quantiles = [ ("p50", 0.5); ("p95", 0.95); ("p99", 0.99) ]

let quantile_summary_text h =
  if h.total = 0 then ""
  else
    String.concat ""
      (List.map
         (fun (label, q) ->
           match quantile h q with
           | Some v -> Printf.sprintf " %s=%.3g" label v
           | None -> "")
         summary_quantiles)

let render_text () =
  let buf = Buffer.create 1024 in
  List.iter
    (function
      | Counter c ->
          Buffer.add_string buf
            (Printf.sprintf "counter %s %d\n" c.c_name (counter_value c))
      | Gauge g ->
          Buffer.add_string buf
            (match gauge_value g with
            | Some v -> Printf.sprintf "gauge %s %.6g\n" g.g_name v
            | None -> Printf.sprintf "gauge %s unset\n" g.g_name)
      | Histogram h ->
          Buffer.add_string buf
            (Printf.sprintf "histogram %s count=%d sum=%.6g%s\n" h.h_name
               h.total h.sum (quantile_summary_text h));
          Array.iter
            (fun (lo, hi, n) ->
              if n > 0 then
                Buffer.add_string buf
                  (Printf.sprintf "  [%.3g, %.3g) %d\n" lo hi n))
            (buckets h))
    (registered ());
  Buffer.contents buf

let snapshot () =
  let counters, gauges, histograms =
    List.fold_left
      (fun (cs, gs, hs) i ->
        match i with
        | Counter c ->
            ( Json.Obj
                [ ("name", Json.String c.c_name); ("value", Json.Int (counter_value c)) ]
              :: cs,
              gs,
              hs )
        | Gauge g ->
            let v =
              match gauge_value g with
              | Some v -> Json.Float v
              | None -> Json.Null
            in
            (cs, Json.Obj [ ("name", Json.String g.g_name); ("value", v) ] :: gs, hs)
        | Histogram h ->
            let bucket_items =
              Array.to_list (buckets h)
              |> List.filter_map (fun (lo, hi, n) ->
                     if n = 0 then None
                     else
                       Some
                         (Json.Obj
                            [
                              ("lo", Json.Float lo);
                              ("hi", Json.Float hi);
                              ("count", Json.Int n);
                            ]))
            in
            let stat f = match f with Some v -> Json.Float v | None -> Json.Null in
            let quantile_fields =
              List.map
                (fun (label, q) -> (label, stat (quantile h q)))
                summary_quantiles
            in
            ( cs,
              gs,
              Json.Obj
                ([
                   ("name", Json.String h.h_name);
                   ("count", Json.Int h.total);
                   ("sum", Json.Float h.sum);
                   ("min", stat (histogram_min h));
                   ("max", stat (histogram_max h));
                 ]
                @ quantile_fields
                @ [ ("buckets", Json.List bucket_items) ])
              :: hs ))
      ([], [], []) !registry
  in
  Json.Obj
    [
      ("counters", Json.List counters);
      ("gauges", Json.List gauges);
      ("histograms", Json.List histograms);
    ]

let render_json () = Json.render (snapshot ())
