(** Counters, gauges and log-bucketed histograms with a global registry.

    All instruments share one global enabled flag (default: off). While
    disabled, every mutation ({!incr}, {!add}, {!set}, {!observe}) costs a
    single load-and-branch and allocates nothing, so instrumentation can
    live in the simulator hot loops. Creating an instrument registers it
    in creation order for {!render_text} / {!render_json} regardless of
    the flag.

    Domain safety: counters are atomic (concurrent {!incr}/{!add} from
    pool workers are never lost). Gauges and histograms are
    single-writer: parallel code accumulates per shard and merges at
    join on the calling domain (the lib/exec convention), so {!set} and
    {!observe} must not race. Create instruments from the main domain. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Fresh counter registered under the given name, starting at 0. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_name : counter -> string
val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge
val set : gauge -> float -> unit

val gauge_name : gauge -> string

val gauge_value : gauge -> float option
(** [None] until the first (enabled) {!set}. *)

(** {1 Log-bucketed histograms}

    Buckets are log-spaced, sized for PFD magnitudes: by default 9 decades
    from [1e-9] to [1.0] with 4 buckets per decade, plus an underflow
    bucket (holding everything below [lo], including 0) and an overflow
    bucket. *)

type histogram

val histogram : ?lo:float -> ?decades:int -> ?per_decade:int -> string -> histogram
(** Raises [Invalid_argument] unless [lo > 0], [decades > 0] and
    [per_decade > 0]. *)

val observe : histogram -> float -> unit

val buckets : histogram -> (float * float * int) array
(** All buckets in order as [(lower, upper, count)]: the underflow bucket
    [(0, lo)] first, then the log buckets, then the overflow bucket with
    upper edge [infinity]. *)

val histogram_name : histogram -> string
val histogram_count : histogram -> int
val histogram_sum : histogram -> float
val histogram_min : histogram -> float option
val histogram_max : histogram -> float option

val quantile : histogram -> float -> float option
(** Bucket-resolution quantile estimate (geometric midpoint of the bucket
    where the cumulative count crosses [q]); [None] on an empty histogram.
    Raises [Invalid_argument] if [q] is outside [0, 1]. *)

(** {1 Registry} *)

val reset_values : unit -> unit
(** Zero every registered instrument (counts, gauge values, buckets). The
    instruments themselves stay registered. *)

val render_text : unit -> string
(** One line per counter/gauge plus per-histogram bucket lines, in
    registration order. Non-empty histogram lines carry a
    [p50=... p95=... p99=...] quantile summary (bucket-resolution
    estimates from {!quantile}). *)

val snapshot : unit -> Json.t
(** The full registry as JSON: [{"counters": [...], "gauges": [...],
    "histograms": [...]}] in registration order. Each histogram object
    carries [p50]/[p95]/[p99] fields ([null] while empty) alongside
    [count], [sum], [min], [max] and the bucket list. *)

val render_json : unit -> string
(** [Json.render (snapshot ())]. *)
