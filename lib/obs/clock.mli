(** Monotonic time — the only sanctioned time source in the repo.

    divlint rule R7 rejects [Unix.gettimeofday] / [Unix.time] / [Sys.time]
    outside [lib/obs/], so all timing flows through this module and is
    immune to wall-clock adjustments (NTP slew, DST). *)

val now_ns : unit -> int64
(** Monotonic clock reading in nanoseconds. Only differences are
    meaningful; the epoch is unspecified (on Linux: CLOCK_MONOTONIC). *)

val elapsed_ns : since:int64 -> int64
(** [elapsed_ns ~since] is [now_ns () - since]. *)

val ns_to_us : int64 -> float
val ns_to_ms : int64 -> float
val ns_to_s : int64 -> float

val timed : (unit -> 'a) -> 'a * int64
(** [timed f] runs [f] and returns its result with the elapsed
    nanoseconds. *)

val pp_duration_ns : Format.formatter -> int64 -> unit
(** Human-readable duration with an auto-selected unit (ns/us/ms/s). *)
