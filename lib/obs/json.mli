(** Minimal JSON tree with a renderer and a strict parser.

    Every artefact the telemetry layer emits (metrics snapshots, Chrome
    trace files, JSONL run logs, [BENCH_kernels.json]) goes through
    {!render}; {!parse} exists so tests and the benchcheck CI gate can
    verify well-formedness without external dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val render : t -> string
(** Compact (single-line) rendering. Non-finite floats become [null]
    since JSON has no NaN/Infinity tokens. *)

val parse : string -> (t, string) result
(** Strict parse of a complete JSON document: rejects trailing content,
    unterminated strings and malformed numbers. Numbers without [.] or an
    exponent parse as {!Int}, everything else as {!Float}. *)

val member : string -> t -> t option
(** Field lookup on an {!Obj}; [None] on any other constructor. *)

val to_list : t -> t list option
val to_string : t -> string option
val to_int : t -> int option

val to_float : t -> float option
(** Also accepts {!Int}, widening to float. *)
