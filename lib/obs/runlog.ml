(* Structured JSONL run log.

   A run log is an in-memory sequence of JSON objects; instrumented code
   appends through the optional global sink, so with no sink installed
   (the default) [record] is one branch. Call sites that must build a
   field list should guard with [active] so the list is never allocated
   on the disabled path. Each event carries the event kind, a sequence
   number and a monotonic timestamp; the caller serialises with
   [to_jsonl] (one object per line) and writes the file itself — this
   module performs no I/O.

   Domain safety: appends are serialised by a per-log mutex (taken only
   when a sink is installed, so the disabled path stays lock-free).
   Deterministic event *order* under parallelism is the caller's job:
   lib/exec call sites collect per-shard outcomes and record them in
   shard order at join rather than logging from worker domains. *)

type t = {
  lock : Mutex.t;
  mutable events_rev : Json.t list;
  mutable count : int;
}

let create () = { lock = Mutex.create (); events_rev = []; count = 0 }

let global : t option ref = ref None

let set_sink s = global := s
let sink () = !global
let active () = match !global with Some _ -> true | None -> false

let record ~kind fields =
  match !global with
  | None -> ()
  | Some t ->
      Mutex.lock t.lock;
      t.count <- t.count + 1;
      t.events_rev <-
        Json.Obj
          (("event", Json.String kind)
          :: ("seq", Json.Int t.count)
          :: ("t_ns", Json.Int (Int64.to_int (Clock.now_ns ())))
          :: fields)
        :: t.events_rev;
      Mutex.unlock t.lock

let record_all ~kind batch =
  match !global with
  | None -> ()
  | Some t ->
      Mutex.lock t.lock;
      List.iter
        (fun fields ->
          t.count <- t.count + 1;
          t.events_rev <-
            Json.Obj
              (("event", Json.String kind)
              :: ("seq", Json.Int t.count)
              :: ("t_ns", Json.Int (Int64.to_int (Clock.now_ns ())))
              :: fields)
            :: t.events_rev)
        batch;
      Mutex.unlock t.lock

let size t = t.count
let events t = List.rev t.events_rev

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.render e);
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf
