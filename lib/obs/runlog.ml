(* Structured JSONL run log.

   A run log is a sequence of JSON objects; instrumented code appends
   through the optional global sink, so with no sink installed (the
   default) [record] is one branch. Call sites that must build a field
   list should guard with [active] so the list is never allocated on the
   disabled path. Each event carries the event kind, a sequence number
   and a monotonic timestamp.

   Two sink shapes exist. [create ()] retains events in memory; the
   caller serialises with [to_jsonl] / [output_jsonl] and writes the
   file itself. [create_streaming oc] renders each event to [oc] as it
   is recorded and retains nothing, so a million-event operational
   history costs O(1) memory to produce — the in-memory accessors
   ([events], [to_jsonl]) are meaningless there and raise.

   Domain safety: appends are serialised by a per-log mutex (taken only
   when a sink is installed, so the disabled path stays lock-free).
   Deterministic event *order* under parallelism is the caller's job:
   lib/exec call sites collect per-shard outcomes and record them in
   shard order at join rather than logging from worker domains. *)

type mode = In_memory | Streaming of out_channel

type t = {
  lock : Mutex.t;
  mode : mode;
  mutable events_rev : Json.t list;
  mutable count : int;
}

let create () =
  { lock = Mutex.create (); mode = In_memory; events_rev = []; count = 0 }

let create_streaming oc =
  { lock = Mutex.create (); mode = Streaming oc; events_rev = []; count = 0 }

let global : t option ref = ref None

let set_sink s = global := s
let sink () = !global
let active () = match !global with Some _ -> true | None -> false

(* Must be called with [t.lock] held. *)
let append_locked t ~kind fields =
  t.count <- t.count + 1;
  let event =
    Json.Obj
      (("event", Json.String kind)
      :: ("seq", Json.Int t.count)
      :: ("t_ns", Json.Int (Int64.to_int (Clock.now_ns ())))
      :: fields)
  in
  match t.mode with
  | In_memory -> t.events_rev <- event :: t.events_rev
  | Streaming oc ->
      output_string oc (Json.render event);
      output_char oc '\n'

let record ~kind fields =
  match !global with
  | None -> ()
  | Some t ->
      Mutex.lock t.lock;
      append_locked t ~kind fields;
      Mutex.unlock t.lock

let record_all ~kind batch =
  match !global with
  | None -> ()
  | Some t ->
      Mutex.lock t.lock;
      List.iter (fun fields -> append_locked t ~kind fields) batch;
      Mutex.unlock t.lock

let size t = t.count

let require_in_memory what t =
  match t.mode with
  | In_memory -> ()
  | Streaming _ ->
      invalid_arg
        ("Runlog." ^ what ^ ": streaming log retains no events (already \
          written to its channel)")

let events t =
  require_in_memory "events" t;
  List.rev t.events_rev

let to_jsonl t =
  require_in_memory "to_jsonl" t;
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.render e);
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf

let output_jsonl t oc =
  require_in_memory "output_jsonl" t;
  List.iter
    (fun e ->
      output_string oc (Json.render e);
      output_char oc '\n')
    (events t)

let input_line_opt ic = try Some (input_line ic) with End_of_file -> None
