(* The only sanctioned time source in the repo (divlint rule R7 rejects
   Unix.gettimeofday / Unix.time / Sys.time everywhere else): a monotonic
   nanosecond clock, so spans and kernel timings are immune to wall-clock
   adjustments. The raw reading comes from bechamel's clock_gettime
   (CLOCK_MONOTONIC) stub, which is [@@noalloc]. *)

let now_ns () = Monotonic_clock.now ()

let elapsed_ns ~since = Int64.sub (now_ns ()) since

let ns_to_us ns = Int64.to_float ns *. 1e-3
let ns_to_ms ns = Int64.to_float ns *. 1e-6
let ns_to_s ns = Int64.to_float ns *. 1e-9

let timed f =
  let t0 = now_ns () in
  let result = f () in
  (result, elapsed_ns ~since:t0)

let pp_duration_ns ppf ns =
  let ns_f = Int64.to_float ns in
  if ns_f < 1e3 then Fmt.pf ppf "%Ldns" ns
  else if ns_f < 1e6 then Fmt.pf ppf "%.1fus" (ns_to_us ns)
  else if ns_f < 1e9 then Fmt.pf ppf "%.2fms" (ns_to_ms ns)
  else Fmt.pf ppf "%.3fs" (ns_to_s ns)
