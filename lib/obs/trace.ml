(* Nested spans over the monotonic clock.

   Spans record (name, shard, depth, start, duration) into a growable
   global array in start order, which serves both renderings: the text
   tree indents by depth, and the Chrome trace-event JSON emits one
   complete ("ph":"X") event per span with the shard as its "tid", so
   traces from parallel runs stay well-nested per shard lane. With
   tracing disabled (the default), [enter] returns the null handle after
   a single branch and [leave] is a no-op, so hot loops can carry spans
   permanently.

   Domain safety: all mutation of the span store happens under [lock]
   (only reached while tracing is enabled). Nesting depth is tracked per
   shard — lib/exec tags each worker task with its shard id via
   {!with_shard}, so concurrent shards each maintain their own open-span
   stack instead of corrupting a global one. *)

let enabled = ref false
let set_enabled b = enabled := b
let is_enabled () = !enabled

(* The shard id is domain-local state: the main domain (and any code
   outside a sharded region) reports shard 0. *)
let shard_key = Domain.DLS.new_key (fun () -> 0)
let current_shard () = Domain.DLS.get shard_key

let with_shard shard f =
  let prev = Domain.DLS.get shard_key in
  Domain.DLS.set shard_key shard;
  Fun.protect ~finally:(fun () -> Domain.DLS.set shard_key prev) f

type record = {
  r_name : string;
  r_shard : int;
  r_depth : int;
  r_start_ns : int64;
  mutable r_dur_ns : int64;  (* -1 while the span is open *)
}

let dummy = { r_name = ""; r_shard = 0; r_depth = 0; r_start_ns = 0L; r_dur_ns = 0L }

let lock = Mutex.create ()

(* Growable event store; OCaml 5.1 has no Dynarray yet. *)
let events = ref ([||] : record array)
let count = ref 0

(* shard id -> indices of that shard's currently open spans *)
let open_stacks : (int, int list) Hashtbl.t = Hashtbl.create 8

let append r =
  let arr = !events in
  let n = !count in
  let arr =
    if n < Array.length arr then arr
    else begin
      let grown = Array.make (if n = 0 then 256 else 2 * n) dummy in
      Array.blit arr 0 grown 0 n;
      events := grown;
      grown
    end
  in
  arr.(n) <- r;
  count := n + 1;
  n

type handle = int

let null_handle = -1

let enter name =
  if not !enabled then null_handle
  else begin
    let shard = current_shard () in
    Mutex.lock lock;
    let stack =
      match Hashtbl.find_opt open_stacks shard with Some s -> s | None -> []
    in
    let idx =
      append
        {
          r_name = name;
          r_shard = shard;
          r_depth = List.length stack;
          r_start_ns = Clock.now_ns ();
          r_dur_ns = -1L;
        }
    in
    Hashtbl.replace open_stacks shard (idx :: stack);
    Mutex.unlock lock;
    idx
  end

let leave handle =
  if handle >= 0 then begin
    Mutex.lock lock;
    if handle < !count then begin
      let r = (!events).(handle) in
      r.r_dur_ns <- Clock.elapsed_ns ~since:r.r_start_ns;
      match Hashtbl.find_opt open_stacks r.r_shard with
      | Some (top :: rest) when top = handle ->
          Hashtbl.replace open_stacks r.r_shard rest
      | _ -> () (* mismatched leave: keep the stack as-is rather than corrupt it *)
    end;
    Mutex.unlock lock
  end

let with_span name f =
  let h = enter name in
  Fun.protect ~finally:(fun () -> leave h) f

let reset () =
  Mutex.lock lock;
  events := [||];
  count := 0;
  Hashtbl.reset open_stacks;
  Mutex.unlock lock

type span = {
  name : string;
  shard : int;
  depth : int;
  start_ns : int64;
  dur_ns : int64;
}

let spans () =
  Mutex.lock lock;
  let all =
    List.init !count (fun i ->
        let r = (!events).(i) in
        {
          name = r.r_name;
          shard = r.r_shard;
          depth = r.r_depth;
          start_ns = r.r_start_ns;
          dur_ns = r.r_dur_ns;
        })
  in
  Mutex.unlock lock;
  all

let span_count () = !count

let to_text () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      Buffer.add_string buf (String.make (2 * s.depth) ' ');
      Buffer.add_string buf s.name;
      if s.shard <> 0 then Buffer.add_string buf (Fmt.str " [shard %d]" s.shard);
      if s.dur_ns < 0L then Buffer.add_string buf " (open)\n"
      else Buffer.add_string buf (Fmt.str " %a\n" Clock.pp_duration_ns s.dur_ns))
    (spans ());
  Buffer.contents buf

let to_chrome_json () =
  (* Chrome trace-event format ("ph":"X" complete events), timestamps in
     microseconds relative to the first span so the numbers stay small.
     The shard id becomes the "tid", one lane per shard. Loadable in
     chrome://tracing and Perfetto. *)
  let all = spans () in
  let base = match all with s :: _ -> s.start_ns | [] -> 0L in
  let event s =
    Json.Obj
      [
        ("name", Json.String s.name);
        ("cat", Json.String "obs");
        ("ph", Json.String "X");
        ("pid", Json.Int 0);
        ("tid", Json.Int s.shard);
        ("ts", Json.Float (Clock.ns_to_us (Int64.sub s.start_ns base)));
        ("dur", Json.Float (Clock.ns_to_us (Int64.max 0L s.dur_ns)));
      ]
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event all));
      ("displayTimeUnit", Json.String "ms");
    ]

let render_chrome_json () = Json.render (to_chrome_json ())
