(* Nested spans over the monotonic clock.

   Spans record (name, depth, start, duration) into a growable global
   array in start order, which serves both renderings: the text tree
   indents by depth, and the Chrome trace-event JSON emits one complete
   ("ph":"X") event per span. With tracing disabled (the default),
   [enter] returns the null handle after a single branch and [leave] is a
   no-op, so hot loops can carry spans permanently. *)

let enabled = ref false
let set_enabled b = enabled := b
let is_enabled () = !enabled

type record = {
  r_name : string;
  r_depth : int;
  r_start_ns : int64;
  mutable r_dur_ns : int64;  (* -1 while the span is open *)
}

let dummy = { r_name = ""; r_depth = 0; r_start_ns = 0L; r_dur_ns = 0L }

(* Growable event store; OCaml 5.1 has no Dynarray yet. *)
let events = ref ([||] : record array)
let count = ref 0
let open_stack = ref ([] : int list)

let append r =
  let arr = !events in
  let n = !count in
  let arr =
    if n < Array.length arr then arr
    else begin
      let grown = Array.make (if n = 0 then 256 else 2 * n) dummy in
      Array.blit arr 0 grown 0 n;
      events := grown;
      grown
    end
  in
  arr.(n) <- r;
  count := n + 1;
  n

type handle = int

let null_handle = -1

let enter name =
  if not !enabled then null_handle
  else begin
    let idx =
      append
        {
          r_name = name;
          r_depth = List.length !open_stack;
          r_start_ns = Clock.now_ns ();
          r_dur_ns = -1L;
        }
    in
    open_stack := idx :: !open_stack;
    idx
  end

let leave handle =
  if handle >= 0 && handle < !count then begin
    let r = (!events).(handle) in
    r.r_dur_ns <- Clock.elapsed_ns ~since:r.r_start_ns;
    match !open_stack with
    | top :: rest when top = handle -> open_stack := rest
    | _ -> () (* mismatched leave: keep the stack as-is rather than corrupt it *)
  end

let with_span name f =
  let h = enter name in
  Fun.protect ~finally:(fun () -> leave h) f

let reset () =
  events := [||];
  count := 0;
  open_stack := []

type span = { name : string; depth : int; start_ns : int64; dur_ns : int64 }

let spans () =
  List.init !count (fun i ->
      let r = (!events).(i) in
      {
        name = r.r_name;
        depth = r.r_depth;
        start_ns = r.r_start_ns;
        dur_ns = r.r_dur_ns;
      })

let span_count () = !count

let to_text () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      Buffer.add_string buf (String.make (2 * s.depth) ' ');
      Buffer.add_string buf s.name;
      if s.dur_ns < 0L then Buffer.add_string buf " (open)\n"
      else Buffer.add_string buf (Fmt.str " %a\n" Clock.pp_duration_ns s.dur_ns))
    (spans ());
  Buffer.contents buf

let to_chrome_json () =
  (* Chrome trace-event format ("ph":"X" complete events), timestamps in
     microseconds relative to the first span so the numbers stay small.
     Loadable in chrome://tracing and Perfetto. *)
  let all = spans () in
  let base = match all with s :: _ -> s.start_ns | [] -> 0L in
  let event s =
    Json.Obj
      [
        ("name", Json.String s.name);
        ("cat", Json.String "obs");
        ("ph", Json.String "X");
        ("pid", Json.Int 0);
        ("tid", Json.Int 0);
        ("ts", Json.Float (Clock.ns_to_us (Int64.sub s.start_ns base)));
        ("dur", Json.Float (Clock.ns_to_us (Int64.max 0L s.dur_ns)));
      ]
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event all));
      ("displayTimeUnit", Json.String "ms");
    ]

let render_chrome_json () = Json.render (to_chrome_json ())
