(** Structured JSONL run log.

    Instrumented code appends events through an optional global sink;
    with no sink installed (the default) {!record} costs one branch.
    Call sites that build a field list should guard with {!active} so
    nothing is allocated on the disabled path:

    {[
      if Obs.Runlog.active () then
        Obs.Runlog.record ~kind:"sprt.decision"
          [ ("demands", Obs.Json.Int n) ]
    ]}

    Every event carries its kind, a per-log sequence number ([seq]) and a
    monotonic nanosecond timestamp ([t_ns]). This module performs no I/O:
    callers serialise with {!to_jsonl} and write the file themselves. *)

type t

val create : unit -> t

val set_sink : t option -> unit
(** Install (or remove, with [None]) the global sink that {!record}
    appends to. *)

val sink : unit -> t option
val active : unit -> bool

val record : kind:string -> (string * Json.t) list -> unit
(** Append an event to the installed sink; no-op without one. The given
    fields follow the standard [event]/[seq]/[t_ns] fields. *)

val record_all : kind:string -> (string * Json.t) list list -> unit
(** Append one event of the same [kind] per field list, in list order,
    under a single lock acquisition — for join-time replay loops (e.g. a
    fleet recording one event per plant) that would otherwise take the
    log mutex once per event. Each event still gets its own [seq] and
    [t_ns]. No-op without a sink. *)

val size : t -> int

val events : t -> Json.t list
(** Events in append order. *)

val to_jsonl : t -> string
(** One compact JSON object per line, in append order. *)
