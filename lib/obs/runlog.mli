(** Structured JSONL run log.

    Instrumented code appends events through an optional global sink;
    with no sink installed (the default) {!record} costs one branch.
    Call sites that build a field list should guard with {!active} so
    nothing is allocated on the disabled path:

    {[
      if Obs.Runlog.active () then
        Obs.Runlog.record ~kind:"sprt.decision"
          [ ("demands", Obs.Json.Int n) ]
    ]}

    Every event carries its kind, a per-log sequence number ([seq]) and a
    monotonic nanosecond timestamp ([t_ns]). An in-memory log ({!create})
    performs no I/O: callers serialise with {!to_jsonl} / {!output_jsonl}
    and write the file themselves. A streaming log ({!create_streaming})
    appends each event to its channel as it is recorded and retains
    nothing, so long operational histories serialise in O(1) memory. *)

type t

val create : unit -> t
(** In-memory log: events are retained and read back with {!events} /
    {!to_jsonl} / {!output_jsonl}. *)

val create_streaming : out_channel -> t
(** Streaming log: each recorded event is rendered to the channel as one
    JSONL line immediately and not retained, so producing a
    million-event run log does not hold the log in memory. The caller
    owns the channel (flushing/closing it); {!size} still counts events,
    but {!events} / {!to_jsonl} / {!output_jsonl} raise
    [Invalid_argument]. *)

val set_sink : t option -> unit
(** Install (or remove, with [None]) the global sink that {!record}
    appends to. *)

val sink : unit -> t option
val active : unit -> bool

val record : kind:string -> (string * Json.t) list -> unit
(** Append an event to the installed sink; no-op without one. The given
    fields follow the standard [event]/[seq]/[t_ns] fields. *)

val record_all : kind:string -> (string * Json.t) list list -> unit
(** Append one event of the same [kind] per field list, in list order,
    under a single lock acquisition — for join-time replay loops (e.g. a
    fleet recording one event per plant) that would otherwise take the
    log mutex once per event. Each event still gets its own [seq] and
    [t_ns]. No-op without a sink. *)

val size : t -> int

val events : t -> Json.t list
(** Events in append order. Raises [Invalid_argument] on a streaming
    log. *)

val to_jsonl : t -> string
(** One compact JSON object per line, in append order, as one string.
    Kept for tests and small logs; large logs should prefer
    {!output_jsonl} or a streaming sink. Raises [Invalid_argument] on a
    streaming log. *)

val output_jsonl : t -> out_channel -> unit
(** Append the log to a channel, one compact JSON object per line,
    without materialising the whole serialisation as a string. Raises
    [Invalid_argument] on a streaming log. *)

val input_line_opt : in_channel -> string option
(** Next line of a JSONL stream, [None] at end of file — the reader half
    of the streaming pair, used by [lib/evidence] to consume run logs
    incrementally without loading the file. *)
