open Numerics

type t = { alias : Alias.t }

let of_weights weights = { alias = Alias.create weights }

let uniform ~size =
  if size <= 0 then invalid_arg "Profile.uniform: size must be positive";
  of_weights (Array.make size 1.0)

let zipf ~size ~exponent =
  if size <= 0 then invalid_arg "Profile.zipf: size must be positive";
  of_weights
    (Array.init size (fun i -> (1.0 /. float_of_int (i + 1)) ** exponent))

let random rng ~size ~alpha =
  if size <= 0 then invalid_arg "Profile.random: size must be positive";
  of_weights (Sampler.dirichlet rng ~alphas:(Array.make size alpha))

let peaked ~size ~peak ~mass =
  if size <= 0 then invalid_arg "Profile.peaked: size must be positive";
  if peak < 0 || peak >= size then invalid_arg "Profile.peaked: peak out of range";
  if mass <= 0.0 || mass >= 1.0 then
    invalid_arg "Profile.peaked: mass must lie strictly in (0, 1)";
  let rest = (1.0 -. mass) /. float_of_int (max 1 (size - 1)) in
  of_weights (Array.init size (fun i -> if i = peak then mass else rest))

let size t = Alias.size t.alias

let probability t demand = Alias.probability t.alias (Demand.to_int demand)

let sample t rng = Demand.of_int (Alias.sample t.alias rng)

let sample_many t rng buf ~n = Alias.sample_many t.alias rng buf ~n

let measure t bitset =
  if Bitset.length bitset <> size t then
    invalid_arg "Profile.measure: bitset over a different space";
  let acc = Kahan.create () in
  Bitset.iter (fun i -> Kahan.add acc (Alias.probability t.alias i)) bitset;
  Kahan.total acc

let probabilities t = Alias.probabilities t.alias
