(** The operational profile: "each demand in the demand space has a certain
    (possibly unknown) probability of happening during the operation of the
    controlled system" (Section 2.1).

    A profile is a categorical distribution over a finite demand space with
    O(1) sampling; the measure of a failure region under the profile is the
    region's q parameter. *)

type t

val of_weights : float array -> t
(** Normalises the non-negative weight vector. *)

val uniform : size:int -> t

val zipf : size:int -> exponent:float -> t
(** Heavy-headed profile: demand i+1 has weight 1/(i+1)^exponent — a few
    demand types dominate operation, the common situation in plant
    protection. *)

val random : Numerics.Rng.t -> size:int -> alpha:float -> t
(** Dirichlet(alpha)-distributed random profile. *)

val peaked : size:int -> peak:int -> mass:float -> t
(** One demand carries [mass]; the rest share the remainder uniformly. *)

val size : t -> int

val probability : t -> Demand.t -> float
(** Probability that the next demand is this one. *)

val sample : t -> Numerics.Rng.t -> Demand.t

val sample_many : t -> Numerics.Rng.t -> int array -> n:int -> unit
(** Fill [buf.(0 .. n-1)] with the integer ids ({!Demand.to_int}) of [n]
    profile draws. Byte-compatible with [n] successive {!sample} calls
    (identical RNG draw sequence and outcomes); the batched form exists
    for simulation hot loops that sample demands in blocks. *)

val measure : t -> Numerics.Bitset.t -> float
(** Probability that a random demand lands in the given set — the q of a
    failure region (compensated sum). *)

val probabilities : t -> float array
