(** Descriptive statistics over float arrays.

    Used to summarise Monte-Carlo PFD samples (e.g. the synthetic
    Knight–Leveson replication in experiment E09, which compares sample means
    and standard deviations of version and pair PFDs). *)

type summary = {
  n : int;
  mean : float;
  variance : float;  (** unbiased (Bessel-corrected); 0 when n = 1 *)
  std : float;
  min : float;
  max : float;
}

val approx_eq : ?rel:float -> ?abs:float -> float -> float -> bool
(** Tolerant float equality: true when the operands differ by at most [abs]
    (default 1e-12) absolutely or [rel] (default 1e-9) relatively. False
    whenever either operand is NaN. This is the comparison divlint rule R1
    points at in place of exact [=] on floats. *)

val is_zero : ?eps:float -> float -> bool
(** [is_zero x] is true when [|x| <= eps]. The default [eps] is the
    smallest positive {e normal} float, so it accepts exact zeros and
    subnormals — exactly the values that make a division overflow or go
    undefined — while never swallowing a legitimately small probability.
    Intended as the guard before dividing by [x]. *)

val mean : float array -> float
(** Compensated mean. Raises [Invalid_argument] on empty input. *)

val variance : ?bessel:bool -> float array -> float
(** Two-pass compensated variance; [bessel] (default true) selects the
    unbiased estimator. Requires at least two observations. *)

val std : ?bessel:bool -> float array -> float
(** Standard deviation. *)

val summarize : float array -> summary
(** Full summary in one pass over the data. *)

val covariance : float array -> float array -> float
(** Unbiased sample covariance. *)

val correlation : float array -> float array -> float
(** Pearson correlation; 0 by convention when either input is constant. *)

val quantile : float array -> float -> float
(** Type-7 (linear interpolation) quantile of an unsorted sample. *)

val quantile_sorted : float array -> float -> float
(** As {!quantile} but assumes the input is already sorted ascending. *)

val median : float array -> float

val empirical_cdf : float array -> float -> float
(** [empirical_cdf a] returns the step CDF x -> #{i | a_i <= x}/n. *)

val standard_error : float array -> float
(** Standard error of the mean. *)

val mean_ci : ?z:float -> float array -> float * float
(** Normal-theory confidence interval for the mean ([z] defaults to the
    two-sided 95% value). *)

val proportion_ci : ?z:float -> successes:int -> trials:int -> unit -> float * float
(** Wilson score interval for a binomial proportion; well behaved for the
    near-zero probabilities typical of PFD estimation. *)
