let default_tol = 1e-12
let default_max_iter = 200

let bisect ?(tol = default_tol) ?(max_iter = default_max_iter) f ~lo ~hi =
  let flo = f lo and fhi = f hi in
  if flo = 0.0 then lo (* divlint: allow float-eq *)
  else if fhi = 0.0 then hi (* divlint: allow float-eq *)
  else if flo *. fhi > 0.0 then
    invalid_arg "Rootfind.bisect: no sign change over the bracket"
  else
    let rec loop lo hi flo iter =
      let mid = 0.5 *. (lo +. hi) in
      if hi -. lo < tol || iter >= max_iter then mid
      else
        let fmid = f mid in
        if fmid = 0.0 then mid (* divlint: allow float-eq *)
        else if flo *. fmid < 0.0 then loop lo mid flo (iter + 1)
        else loop mid hi fmid (iter + 1)
    in
    loop lo hi flo 0

(* Brent's method: inverse quadratic interpolation with bisection fallback. *)
let brent ?(tol = default_tol) ?(max_iter = default_max_iter) f ~lo ~hi =
  let a = ref lo and b = ref hi in
  let fa = ref (f lo) and fb = ref (f hi) in
  if !fa = 0.0 then !a (* divlint: allow float-eq *)
  else if !fb = 0.0 then !b (* divlint: allow float-eq *)
  else if !fa *. !fb > 0.0 then
    invalid_arg "Rootfind.brent: no sign change over the bracket"
  else begin
    if abs_float !fa < abs_float !fb then begin
      let t = !a in
      a := !b;
      b := t;
      let t = !fa in
      fa := !fb;
      fb := t
    end;
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) in
    let mflag = ref true in
    let iter = ref 0 in
    while abs_float !fb > 0.0 && abs_float (!b -. !a) > tol && !iter < max_iter do
      let s =
        if !fa <> !fc && !fb <> !fc then
          (* inverse quadratic interpolation *)
          (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
          +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
          +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
        else
          (* secant *)
          !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
      in
      let lo_bound = ((3.0 *. !a) +. !b) /. 4.0 in
      let use_bisection =
        let between =
          (s > min lo_bound !b && s < max lo_bound !b) |> not
        in
        between
        || (!mflag && abs_float (s -. !b) >= abs_float (!b -. !c) /. 2.0)
        || ((not !mflag) && abs_float (s -. !b) >= abs_float (!c -. !d) /. 2.0)
        || (!mflag && abs_float (!b -. !c) < tol)
        || ((not !mflag) && abs_float (!c -. !d) < tol)
      in
      let s = if use_bisection then (!a +. !b) /. 2.0 else s in
      mflag := use_bisection;
      let fs = f s in
      d := !c;
      c := !b;
      fc := !fb;
      if !fa *. fs < 0.0 then begin
        b := s;
        fb := fs
      end
      else begin
        a := s;
        fa := fs
      end;
      if abs_float !fa < abs_float !fb then begin
        let t = !a in
        a := !b;
        b := t;
        let t = !fa in
        fa := !fb;
        fb := t
      end;
      incr iter
    done;
    !b
  end

let minimize_golden ?(tol = 1e-10) ?(max_iter = default_max_iter) f ~lo ~hi =
  let phi = (sqrt 5.0 -. 1.0) /. 2.0 in
  let rec loop a b iter =
    if b -. a < tol || iter >= max_iter then 0.5 *. (a +. b)
    else
      let x1 = b -. (phi *. (b -. a)) in
      let x2 = a +. (phi *. (b -. a)) in
      if f x1 < f x2 then loop a x2 (iter + 1) else loop x1 b (iter + 1)
  in
  loop lo hi 0
