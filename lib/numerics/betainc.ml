let log_beta a b = Special.log_gamma a +. Special.log_gamma b -. Special.log_gamma (a +. b)

(* Continued fraction for the incomplete beta function (Lentz's method,
   Numerical Recipes' betacf). *)
let betacf a b x =
  let tiny = 1e-300 in
  let qab = a +. b and qap = a +. 1.0 and qam = a -. 1.0 in
  let c = ref 1.0 in
  let d = ref (1.0 -. (qab *. x /. qap)) in
  if abs_float !d < tiny then d := tiny;
  d := 1.0 /. !d;
  let h = ref !d in
  let m = ref 1 in
  let continue_ = ref true in
  while !continue_ && !m <= 300 do
    let mf = float_of_int !m in
    let m2 = 2.0 *. mf in
    (* even step *)
    let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
    d := 1.0 +. (aa *. !d);
    if abs_float !d < tiny then d := tiny;
    c := 1.0 +. (aa /. !c);
    if abs_float !c < tiny then c := tiny;
    d := 1.0 /. !d;
    h := !h *. !d *. !c;
    (* odd step *)
    let aa = -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2)) in
    d := 1.0 +. (aa *. !d);
    if abs_float !d < tiny then d := tiny;
    c := 1.0 +. (aa /. !c);
    if abs_float !c < tiny then c := tiny;
    d := 1.0 /. !d;
    let delta = !d *. !c in
    h := !h *. delta;
    if abs_float (delta -. 1.0) < 1e-15 then continue_ := false;
    incr m
  done;
  !h

let regularized ~a ~b x =
  if a <= 0.0 || b <= 0.0 then
    invalid_arg "Betainc.regularized: shapes must be positive";
  if Float.is_nan x || x < 0.0 || x > 1.0 then
    invalid_arg "Betainc.regularized: x outside [0, 1]";
  if x = 0.0 then 0.0 (* divlint: allow float-eq *)
  else if x = 1.0 then 1.0 (* divlint: allow float-eq *)
  else
    let front =
      exp
        ((a *. log x) +. (b *. Special.log1p (-.x)) -. log_beta a b)
    in
    (* use the symmetry relation to keep the continued fraction in its
       rapidly convergent region *)
    if x < (a +. 1.0) /. (a +. b +. 2.0) then front *. betacf a b x /. a
    else 1.0 -. (front *. betacf b a (1.0 -. x) /. b)

let beta_cdf ~a ~b x = regularized ~a ~b (max 0.0 (min 1.0 x))

let beta_ppf ~a ~b p =
  if p < 0.0 || p > 1.0 then invalid_arg "Betainc.beta_ppf: p outside [0, 1]";
  if p = 0.0 then 0.0 (* divlint: allow float-eq *)
  else if p = 1.0 then 1.0 (* divlint: allow float-eq *)
  else Rootfind.bisect ~tol:1e-14 (fun x -> regularized ~a ~b x -. p) ~lo:0.0 ~hi:1.0

let beta_mean ~a ~b = a /. (a +. b)

let binomial_cdf ~n ~p k =
  if n < 0 then invalid_arg "Betainc.binomial_cdf: negative n";
  if p < 0.0 || p > 1.0 then invalid_arg "Betainc.binomial_cdf: p outside [0, 1]";
  if k < 0 then 0.0
  else if k >= n then 1.0
  else if p = 0.0 then 1.0 (* divlint: allow float-eq *)
  else if p = 1.0 then 0.0 (* divlint: allow float-eq *)
  else
    (* P(X <= k) = I_{1-p}(n-k, k+1) *)
    regularized ~a:(float_of_int (n - k)) ~b:(float_of_int (k + 1)) (1.0 -. p)

let binomial_sf ~n ~p k = 1.0 -. binomial_cdf ~n ~p k

let binomial_tail_direct ~n ~p k =
  (* sum_{j >= k} C(n,j) p^j (1-p)^(n-j), in log space; the test oracle for
     binomial_sf and the evaluator used for small n in the voting model. *)
  if k <= 0 then 1.0
  else if k > n then 0.0
  else if p = 0.0 then 0.0 (* divlint: allow float-eq *)
  else if p = 1.0 then 1.0 (* divlint: allow float-eq *)
  else
    Kahan.sum_over
      (n - k + 1)
      (fun i ->
        let j = k + i in
        exp
          (Special.log_choose n j
          +. (float_of_int j *. log p)
          +. (float_of_int (n - j) *. Special.log1p (-.p))))
