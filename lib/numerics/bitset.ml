type t = { size : int; words : int array }

let bits_per_word = Sys.int_size

let create size =
  if size < 0 then invalid_arg "Bitset.create: negative size";
  { size; words = Array.make ((size + bits_per_word - 1) / bits_per_word) 0 }

let length t = t.size

let check t i name =
  if i < 0 || i >= t.size then invalid_arg (name ^ ": index out of range")

let set t i =
  check t i "Bitset.set";
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let clear t i =
  check t i "Bitset.clear";
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  check t i "Bitset.mem";
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

let copy t = { size = t.size; words = Array.copy t.words }
let reset t = Array.fill t.words 0 (Array.length t.words) 0

let check_sizes a b name =
  if a.size <> b.size then invalid_arg (name ^ ": size mismatch")

let union a b =
  check_sizes a b "Bitset.union";
  { size = a.size; words = Array.mapi (fun i w -> w lor b.words.(i)) a.words }

let inter a b =
  check_sizes a b "Bitset.inter";
  { size = a.size; words = Array.mapi (fun i w -> w land b.words.(i)) a.words }

let diff a b =
  check_sizes a b "Bitset.diff";
  {
    size = a.size;
    words = Array.mapi (fun i w -> w land lnot b.words.(i)) a.words;
  }

let union_in_place a b =
  check_sizes a b "Bitset.union_in_place";
  Array.iteri (fun i w -> a.words.(i) <- a.words.(i) lor w) b.words

let popcount_word w =
  let rec loop w acc = if w = 0 then acc else loop (w land (w - 1)) (acc + 1) in
  loop w 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let disjoint a b =
  check_sizes a b "Bitset.disjoint";
  let ok = ref true in
  Array.iteri (fun i w -> if w land b.words.(i) <> 0 then ok := false) a.words;
  !ok

let iter f t =
  for i = 0 to t.size - 1 do
    if mem t i then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list size l =
  let t = create size in
  List.iter (fun i -> set t i) l;
  t

let equal a b = a.size = b.size && a.words = b.words
