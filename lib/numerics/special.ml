let sqrt_pi = 1.7724538509055160273
let sqrt2 = 1.4142135623730950488

(* erf by Maclaurin series; alternating-sign stable form via the
   confluent-hypergeometric rearrangement erf(x) = 2x e^{-x^2}/sqrt(pi)
   * sum_{n>=0} (2x^2)^n / (1*3*...*(2n+1)), all terms positive. *)
let erf_series x =
  let x2 = x *. x in
  let rec loop n term acc =
    if term < 1e-18 *. acc || n > 300 then acc
    else
      let term' = term *. 2.0 *. x2 /. float_of_int (2 * n + 3) in
      loop (n + 1) term' (acc +. term')
  in
  let total = loop 0 1.0 1.0 in
  2.0 *. x *. exp (-.x2) /. sqrt_pi *. total

(* erfc by Lentz's continued fraction, accurate for x >= 1:
   erfc(x) = e^{-x^2}/sqrt(pi) * 1/(x + 1/2/(x + 1/(x + 3/2/(x + ...)))) *)
let erfc_cf x =
  let tiny = 1e-300 in
  let b0 = x in
  let f = ref (if abs_float b0 < tiny then tiny else b0) in
  let c = ref !f in
  let d = ref 0.0 in
  let continue_ = ref true in
  let m = ref 1 in
  while !continue_ && !m < 300 do
    let a = float_of_int !m /. 2.0 in
    (* every partial denominator is x *)
    d := x +. (a *. !d);
    if abs_float !d < tiny then d := tiny;
    c := x +. (a /. !c);
    if abs_float !c < tiny then c := tiny;
    d := 1.0 /. !d;
    let delta = !c *. !d in
    f := !f *. delta;
    if abs_float (delta -. 1.0) < 1e-17 then continue_ := false;
    incr m
  done;
  exp (-.x *. x) /. sqrt_pi /. !f

let erf x =
  if x <> x then nan
  else if x < 0.0 then
    -.(if -.x < 1.5 then erf_series (-.x) else 1.0 -. erfc_cf (-.x))
  else if x < 1.5 then erf_series x
  else if x > 6.5 then 1.0
  else 1.0 -. erfc_cf x

let erfc x =
  if x <> x then nan
  else if x < 0.0 then
    2.0 -. (if -.x < 1.5 then 1.0 -. erf_series (-.x) else erfc_cf (-.x))
  else if x < 1.5 then 1.0 -. erf_series x
  else if x > 27.5 then 0.0 (* erfc(27.5) < 1e-300: underflow *)
  else erfc_cf x

let log_gamma_coeffs =
  [|
    676.5203681218851; -1259.1392167224028; 771.32342877765313;
    -176.61502916214059; 12.507343278686905; -0.13857109526572012;
    9.9843695780195716e-6; 1.5056327351493116e-7;
  |]

(* Lanczos approximation, g = 7, n = 9. *)
let rec log_gamma x =
  if x <> x then nan
  else if x <= 0.0 && Float.is_integer x then infinity
  else if x < 0.5 then
    (* reflection: Gamma(x) Gamma(1-x) = pi / sin(pi x) *)
    log (Float.pi /. abs_float (sin (Float.pi *. x))) -. log_gamma (1.0 -. x)
  else
    let x = x -. 1.0 in
    let acc = ref 0.99999999999980993 in
    Array.iteri
      (fun i c -> acc := !acc +. (c /. (x +. float_of_int (i + 1))))
      log_gamma_coeffs;
    let t = x +. 7.5 in
    (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc

let log_factorial =
  let cache = Array.make 256 nan in
  fun n ->
    if n < 0 then invalid_arg "Special.log_factorial: negative argument"
    else if n < 256 then begin
      if Float.is_nan cache.(n) then cache.(n) <- log_gamma (float_of_int (n + 1));
      cache.(n)
    end
    else log_gamma (float_of_int (n + 1))

let log_choose n k =
  if k < 0 || k > n then neg_infinity
  else log_factorial n -. log_factorial k -. log_factorial (n - k)

let log1p = Float.log1p
let expm1 = Float.expm1

let logsumexp a =
  let m = Array.fold_left max neg_infinity a in
  if m = neg_infinity then neg_infinity
  else m +. log (Kahan.sum_over (Array.length a) (fun i -> exp (a.(i) -. m)))
