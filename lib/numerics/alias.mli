(** O(1) sampling from a fixed categorical distribution (Vose's alias
    method).

    Operational profiles over demand spaces (Section 2.1 of the paper: "each
    demand ... has a certain probability of happening") are categorical
    distributions with up to millions of outcomes; the alias method makes
    demand generation constant-time per demand. *)

type t
(** Immutable sampling table. *)

val create : float array -> t
(** Build a table from non-negative weights (need not be normalised).
    Raises [Invalid_argument] on empty, negative, NaN, or all-zero input. *)

val size : t -> int
(** Number of outcomes. *)

val sample : t -> Rng.t -> int
(** Draw an outcome index with probability proportional to its weight. *)

val sample_many : t -> Rng.t -> int array -> n:int -> unit
(** [sample_many t rng buf ~n] fills [buf.(0 .. n-1)] with [n] draws.
    Byte-compatible with [n] successive {!sample} calls: the RNG draw
    sequence and the outcomes are identical; only the per-call overhead
    differs. Raises [Invalid_argument] unless [0 <= n <= length buf]. *)

val probability : t -> int -> float
(** Normalised probability of outcome [i]. *)

val probabilities : t -> float array
(** Copy of the full normalised probability vector. *)
