type t = {
  prob : float array; (* scaled acceptance probability per bucket *)
  alias : int array; (* fallback outcome per bucket *)
  weights : float array; (* normalised input weights, kept for queries *)
}

let create weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Alias.create: empty weight vector";
  Array.iter
    (fun w ->
      if w < 0.0 || Float.is_nan w then
        invalid_arg "Alias.create: weights must be non-negative")
    weights;
  let total = Kahan.sum_array weights in
  if total <= 0.0 then invalid_arg "Alias.create: weights sum to zero";
  let norm = Array.map (fun w -> w /. total) weights in
  (* Vose's algorithm. *)
  let scaled = Array.map (fun w -> w *. float_of_int n) norm in
  let prob = Array.make n 0.0 in
  let alias = Array.make n 0 in
  let small = Queue.create () and large = Queue.create () in
  Array.iteri
    (fun i s -> if s < 1.0 then Queue.add i small else Queue.add i large)
    scaled;
  while (not (Queue.is_empty small)) && not (Queue.is_empty large) do
    let s = Queue.pop small and l = Queue.pop large in
    prob.(s) <- scaled.(s);
    alias.(s) <- l;
    scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.0;
    if scaled.(l) < 1.0 then Queue.add l small else Queue.add l large
  done;
  Queue.iter (fun i -> prob.(i) <- 1.0) small;
  Queue.iter (fun i -> prob.(i) <- 1.0) large;
  { prob; alias; weights = norm }

let size t = Array.length t.prob

let sample t rng =
  let n = Array.length t.prob in
  let bucket = Rng.int rng n in
  if Rng.float rng < t.prob.(bucket) then bucket else t.alias.(bucket)

(* Batched draws for hot loops: fills [buf.(0 .. n-1)] with exactly the
   outcomes [n] successive [sample] calls would produce — same RNG draw
   sequence, bucket then acceptance, one outcome at a time — but with
   the table fields hoisted out of the loop and no per-call overhead. *)
let sample_many t rng buf ~n =
  if n < 0 || n > Array.length buf then
    invalid_arg "Alias.sample_many: n out of range";
  let prob = t.prob and alias = t.alias in
  let buckets = Array.length prob in
  for i = 0 to n - 1 do
    let bucket = Rng.int rng buckets in
    buf.(i) <-
      (if Rng.float rng < Array.unsafe_get prob bucket then bucket
       else Array.unsafe_get alias bucket)
  done

let probability t i =
  if i < 0 || i >= Array.length t.weights then
    invalid_arg "Alias.probability: index out of range";
  t.weights.(i)

let probabilities t = Array.copy t.weights
