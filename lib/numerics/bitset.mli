(** Fixed-size bit sets.

    Failure regions over a finite demand space, and the failure set of a
    version (the union of its faults' regions), are represented as bitsets
    so that the system-failure set of a 1-out-of-2 pair is just the
    intersection of the two versions' failure sets (Section 2.1). *)

type t
(** A mutable set of integers in [0, size). *)

val create : int -> t
(** Empty set over [0, size). *)

val length : t -> int
(** The size of the underlying universe (not the cardinality). *)

val set : t -> int -> unit
val clear : t -> int -> unit
val mem : t -> int -> bool
val copy : t -> t

val reset : t -> unit
(** Remove every element, keeping the size. *)

val union : t -> t -> t
(** New set; arguments must have equal sizes. *)

val inter : t -> t -> t
val diff : t -> t -> t

val union_in_place : t -> t -> unit
(** [union_in_place a b] adds all of [b] into [a]. *)

val cardinal : t -> int
val is_empty : t -> bool

val disjoint : t -> t -> bool
(** True when the two sets share no element. *)

val iter : (int -> unit) -> t -> unit
(** Visit members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list
val of_list : int -> int list -> t
val equal : t -> t -> bool
