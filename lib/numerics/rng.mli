(** Deterministic pseudo-random number generation (xoshiro256++ seeded via
    splitmix64).

    Every stochastic component of the reproduction takes an explicit [Rng.t]
    so that experiments are replayable from a single integer seed and
    parallel streams can be derived deterministically with {!split}. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** Generator initialised from an integer seed (any value is acceptable,
    including 0: the seed is whitened through splitmix64). *)

val split : t -> index:int -> t
(** [split t ~index] derives a statistically independent substream; distinct
    indices from the same parent state yield distinct streams. Advances the
    parent. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val draws : t -> int
(** Number of raw 64-bit draws this generator has produced so far
    (monotonically increasing; {!split} children start at 0). Equal seeds
    driven through the same code yield equal draw counts — the
    reproducibility regression guard the telemetry layer reports. Note
    that {!int} consumes at least one draw but may consume more
    (rejection sampling). *)

val total_draws : unit -> int
(** Process-wide draw total across every generator ever created, for run
    telemetry (e.g. draws consumed by one experiment = difference around
    the call). Draws are accumulated in a per-domain pending counter and
    merged into the shared total at flush points — this call flushes the
    calling domain, and [Exec.Pool] flushes every worker domain when a
    task joins — so the value is exact after any parallel region and on
    any purely sequential read, without an atomic operation per draw. *)

val local_draws : unit -> int
(** Cumulative raw draws made by the calling domain across every
    generator it has driven (flushed or still pending — flushing never
    resets this). A computation confined to one domain consumes exactly
    [local_draws () - before] draws, which is how the assessment
    service meters the cost of a single request without touching the
    process-wide atomic: each served request evaluates wholly on one
    pool worker, so the per-domain delta is exact. *)

val flush_draws : unit -> unit
(** Merge the calling domain's pending draw count into the process-wide
    total. {!total_draws} calls this for the current domain; worker pools
    must call it on each worker at task completion so totals observed
    after a join are exact (lib/exec does). Idempotent and cheap when
    nothing is pending. *)

val float : t -> float
(** Uniform draw in [0, 1) with 53 bits of precision. *)

val int : t -> int -> int
(** [int t bound] is an unbiased uniform draw in [0, bound).
    Raises [Invalid_argument] if [bound <= 0]. *)

val bool : t -> p:float -> bool
(** Bernoulli draw; [p] is clamped to [0, 1]. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform draw in [lo, hi). *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)
