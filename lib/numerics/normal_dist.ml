let pdf ?(mu = 0.0) ?(sigma = 1.0) x =
  if sigma <= 0.0 then invalid_arg "Normal_dist.pdf: sigma must be positive";
  let z = (x -. mu) /. sigma in
  exp (-0.5 *. z *. z) /. (sigma *. sqrt (2.0 *. Float.pi))

let cdf ?(mu = 0.0) ?(sigma = 1.0) x =
  if sigma <= 0.0 then invalid_arg "Normal_dist.cdf: sigma must be positive";
  let z = (x -. mu) /. sigma in
  0.5 *. Special.erfc (-.z /. Special.sqrt2)

let sf ?(mu = 0.0) ?(sigma = 1.0) x =
  if sigma <= 0.0 then invalid_arg "Normal_dist.sf: sigma must be positive";
  let z = (x -. mu) /. sigma in
  0.5 *. Special.erfc (z /. Special.sqrt2)

(* Acklam's rational approximation to the standard normal quantile,
   |relative error| < 1.15e-9, then one Halley refinement step using our
   high-precision CDF, bringing the result to full double precision. *)
let ppf_raw p =
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let p_high = 1.0 -. p_low in
  if p < p_low then
    let q = sqrt (-2.0 *. log p) in
    (((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
    /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
  else if p <= p_high then
    let q = p -. 0.5 in
    let r = q *. q in
    (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r +. a.(5))
    *. q
    /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.0)
  else
    let q = sqrt (-2.0 *. log (1.0 -. p)) in
    -.((((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
       /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0))

let ppf ?(mu = 0.0) ?(sigma = 1.0) p =
  if sigma <= 0.0 then invalid_arg "Normal_dist.ppf: sigma must be positive";
  if p <= 0.0 || p >= 1.0 then
    invalid_arg "Normal_dist.ppf: p must lie strictly inside (0, 1)";
  let x = ppf_raw p in
  (* Halley refinement: e = Phi(x) - p, u = e/phi(x),
     x' = x - u / (1 + x u / 2). *)
  let e = cdf x -. p in
  let u = e /. pdf x in
  let z = x -. (u /. (1.0 +. (x *. u /. 2.0))) in
  mu +. (sigma *. z)

let k_of_confidence alpha = ppf alpha

let confidence_of_k k = cdf k

let sample rng ?(mu = 0.0) ?(sigma = 1.0) () =
  (* Marsaglia polar method. *)
  let rec loop () =
    let u = Rng.uniform rng ~lo:(-1.0) ~hi:1.0 in
    let v = Rng.uniform rng ~lo:(-1.0) ~hi:1.0 in
    let s = (u *. u) +. (v *. v) in
    if s >= 1.0 || Stats.is_zero s then loop () else u *. sqrt (-2.0 *. log s /. s)
  in
  mu +. (sigma *. loop ())
