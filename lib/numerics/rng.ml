(* The four xoshiro lanes live in a 32-byte buffer rather than mutable
   int64 record fields: Bytes.get/set_int64_ne compile to unboxed loads
   and stores, so a draw allocates nothing, where int64 record stores
   box every lane on every draw (~3x slower per draw — measured; the
   draw is the innermost operation of every simulation). The stream is
   bit-identical to the record representation. *)
type t = { st : Bytes.t; mutable draws : int }

(* Process-wide draw total across every generator, for run telemetry.
   The hot loop never touches this atomic: each domain accumulates its
   draws in a domain-local pending counter (one plain int store per
   draw, no shared cache line), and the pending count is merged with a
   single fetch-and-add per flush — [Exec.Pool] flushes every worker at
   task join, and [total_draws] flushes the calling domain, so the
   total is exact at every parallel join point and on every sequential
   read. *)
let total = Atomic.make 0 (* divlint: allow domain-containment *)

let pending : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

(* Cumulative draws already flushed by this domain. Together with the
   pending counter this gives [local_draws] — an exact per-domain draw
   total that needs no atomic on the draw path and survives flushes, so
   single-domain request handlers (lib/serve) can meter the draws of one
   evaluation as a delta around it. *)
let flushed : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let flush_draws () =
  let p = Domain.DLS.get pending in
  if !p <> 0 then begin
    ignore (Atomic.fetch_and_add total !p) (* divlint: allow domain-containment *);
    let f = Domain.DLS.get flushed in
    f := !f + !p;
    p := 0
  end

let local_draws () = !(Domain.DLS.get flushed) + !(Domain.DLS.get pending)

(* splitmix64: used to expand a seed into the xoshiro state, and to derive
   independent substreams. *)
let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_lanes s0 s1 s2 s3 =
  let st = Bytes.create 32 in
  Bytes.set_int64_ne st 0 s0;
  Bytes.set_int64_ne st 8 s1;
  Bytes.set_int64_ne st 16 s2;
  Bytes.set_int64_ne st 24 s3;
  { st; draws = 0 }

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  of_lanes s0 s1 s2 s3

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256++ *)
let next_int64 t =
  t.draws <- t.draws + 1;
  incr (Domain.DLS.get pending);
  let st = t.st in
  let open Int64 in
  let s0 = Bytes.get_int64_ne st 0
  and s1 = Bytes.get_int64_ne st 8
  and s2 = Bytes.get_int64_ne st 16
  and s3 = Bytes.get_int64_ne st 24 in
  let result = add (rotl (add s0 s3) 23) s0 in
  let tmp = shift_left s1 17 in
  let s2 = logxor s2 s0 in
  let s3 = logxor s3 s1 in
  let s1 = logxor s1 s2 in
  let s0 = logxor s0 s3 in
  let s2 = logxor s2 tmp in
  let s3 = rotl s3 45 in
  Bytes.set_int64_ne st 0 s0;
  Bytes.set_int64_ne st 8 s1;
  Bytes.set_int64_ne st 16 s2;
  Bytes.set_int64_ne st 24 s3;
  result

let split t ~index =
  (* Derive an independent substream: hash the parent's next output with the
     index through splitmix64. *)
  let base = Int64.to_int (next_int64 t) in
  let state = ref (Int64.of_int (base lxor (index * 0x2545F4914F6CDD1D))) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  of_lanes s0 s1 s2 s3

let draws t = t.draws

let total_draws () =
  flush_draws ();
  Atomic.get total (* divlint: allow domain-containment *)

let float t =
  (* 53 high bits -> uniform in [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling for an unbiased result. *)
  let bound64 = Int64.of_int bound in
  let rec loop () =
    let r = Int64.shift_right_logical (next_int64 t) 1 in
    let v = Int64.rem r bound64 in
    if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int bound64) 1L then loop ()
    else Int64.to_int v
  in
  loop ()

let bool t ~p =
  if p <= 0.0 then false else if p >= 1.0 then true else float t < p

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
