type summary = {
  n : int;
  mean : float;
  variance : float;
  std : float;
  min : float;
  max : float;
}

let approx_eq ?(rel = 1e-9) ?(abs = 1e-12) a b =
  let diff = abs_float (a -. b) in
  diff <= abs || diff <= rel *. Float.max (abs_float a) (abs_float b)

let is_zero ?(eps = Float.min_float) x = abs_float x <= eps

let mean a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.mean: empty array";
  Kahan.sum_array a /. float_of_int n

let variance ?(bessel = true) a =
  let n = Array.length a in
  if n < 2 then invalid_arg "Stats.variance: need at least two observations";
  let m = mean a in
  let ss = Kahan.sum_over n (fun i -> (a.(i) -. m) ** 2.0) in
  ss /. float_of_int (if bessel then n - 1 else n)

let std ?bessel a = sqrt (variance ?bessel a)

let summarize a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.summarize: empty array";
  let mn = Array.fold_left min a.(0) a in
  let mx = Array.fold_left max a.(0) a in
  let m = mean a in
  let v = if n >= 2 then variance a else 0.0 in
  { n; mean = m; variance = v; std = sqrt v; min = mn; max = mx }

let covariance a b =
  let n = Array.length a in
  if n <> Array.length b then invalid_arg "Stats.covariance: length mismatch";
  if n < 2 then invalid_arg "Stats.covariance: need at least two observations";
  let ma = mean a and mb = mean b in
  Kahan.sum_over n (fun i -> (a.(i) -. ma) *. (b.(i) -. mb)) /. float_of_int (n - 1)

let correlation a b =
  let c = covariance a b in
  let sa = std a and sb = std b in
  if is_zero sa || is_zero sb then 0.0 else c /. (sa *. sb)

let quantile_sorted sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.quantile_sorted: empty array";
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.quantile_sorted: p outside [0, 1]";
  (* Type-7 (linear interpolation) quantile, the R/NumPy default. *)
  let h = p *. float_of_int (n - 1) in
  let lo = int_of_float (floor h) in
  let hi = if lo + 1 < n then lo + 1 else lo in
  let frac = h -. float_of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let quantile a p =
  let sorted = Array.copy a in
  Array.sort compare sorted;
  quantile_sorted sorted p

let median a = quantile a 0.5

let empirical_cdf a =
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let n = float_of_int (Array.length sorted) in
  fun x ->
    (* number of elements <= x, by binary search for the upper bound *)
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if sorted.(mid) <= x then search (mid + 1) hi else search lo mid
    in
    float_of_int (search 0 (Array.length sorted)) /. n

let standard_error a = std a /. sqrt (float_of_int (Array.length a))

let mean_ci ?(z = 1.959963984540054) a =
  let m = mean a in
  let se = standard_error a in
  (m -. (z *. se), m +. (z *. se))

let proportion_ci ?(z = 1.959963984540054) ~successes ~trials () =
  if trials <= 0 then invalid_arg "Stats.proportion_ci: trials must be positive";
  (* Wilson score interval: behaves correctly for proportions near 0, which
     is exactly where PFD estimates live. *)
  let n = float_of_int trials in
  let p_hat = float_of_int successes /. n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let centre = (p_hat +. (z2 /. (2.0 *. n))) /. denom in
  let half =
    z /. denom *. sqrt ((p_hat *. (1.0 -. p_hat) /. n) +. (z2 /. (4.0 *. n *. n)))
  in
  (max 0.0 (centre -. half), min 1.0 (centre +. half))
